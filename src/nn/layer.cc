#include "nn/layer.h"

namespace procrustes {
namespace nn {

void
measureInputDensities(const Tensor &x, LayerStepReport *out)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() >= 2, "density scan wants [N, C, ...]");
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    int64_t plane = 1;
    for (int i = 2; i < xs.rank(); ++i)
        plane *= xs[i];

    // One pass over the batch: per-(sample, channel) non-zero counts,
    // from which every aggregate the cost model consumes derives.
    // Rank-4 inputs additionally accumulate the spatial marginals the
    // P,Q tile pairings consume (per input row / column).
    const bool spatial = xs.rank() == 4;
    const int64_t h_ext = spatial ? xs[2] : 1;
    const int64_t w_ext = spatial ? xs[3] : 1;
    std::vector<int64_t> row_cnt(static_cast<size_t>(h_ext), 0);
    std::vector<int64_t> col_cnt(static_cast<size_t>(w_ext), 0);
    std::vector<int64_t> nnz(static_cast<size_t>(n * c), 0);
    const float *px = x.data();
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const float *row = px + (in * c + ic) * plane;
            int64_t cnt = 0;
            for (int64_t i = 0; i < plane; ++i) {
                if (row[i] != 0.0f) {
                    ++cnt;
                    if (spatial) {
                        ++row_cnt[static_cast<size_t>(i / w_ext)];
                        ++col_cnt[static_cast<size_t>(i % w_ext)];
                    }
                }
            }
            nnz[static_cast<size_t>(in * c + ic)] = cnt;
        }
    }
    if (spatial) {
        out->inputRowDensity.assign(static_cast<size_t>(h_ext), 0.0);
        out->inputColDensity.assign(static_cast<size_t>(w_ext), 0.0);
        for (int64_t r = 0; r < h_ext; ++r)
            out->inputRowDensity[static_cast<size_t>(r)] =
                static_cast<double>(row_cnt[static_cast<size_t>(r)]) /
                static_cast<double>(n * c * w_ext);
        for (int64_t col = 0; col < w_ext; ++col)
            out->inputColDensity[static_cast<size_t>(col)] =
                static_cast<double>(col_cnt[static_cast<size_t>(col)]) /
                static_cast<double>(n * c * h_ext);
    } else {
        out->inputRowDensity.clear();
        out->inputColDensity.clear();
    }

    const int64_t c_split = c / 2;
    const double sample_elems = static_cast<double>(c * plane);
    out->inputChannelDensity.assign(static_cast<size_t>(c), 0.0);
    out->inputSampleDensity.assign(static_cast<size_t>(n), 0.0);
    out->inputSampleHalfDensity.assign(static_cast<size_t>(n) * 2, 0.0);
    int64_t total = 0;
    for (int64_t in = 0; in < n; ++in) {
        int64_t s = 0;
        int64_t half0 = 0;
        for (int64_t ic = 0; ic < c; ++ic) {
            const int64_t cnt = nnz[static_cast<size_t>(in * c + ic)];
            s += cnt;
            if (ic < c_split)
                half0 += cnt;
            out->inputChannelDensity[static_cast<size_t>(ic)] +=
                static_cast<double>(cnt);
        }
        total += s;
        out->inputSampleDensity[static_cast<size_t>(in)] =
            static_cast<double>(s) / sample_elems;
        // Halves are normalized to the whole sample so they sum to the
        // sample density (mirroring LayerSparsityProfile's convention).
        out->inputSampleHalfDensity[static_cast<size_t>(in * 2)] =
            static_cast<double>(half0) / sample_elems;
        out->inputSampleHalfDensity[static_cast<size_t>(in * 2 + 1)] =
            static_cast<double>(s - half0) / sample_elems;
    }
    for (int64_t ic = 0; ic < c; ++ic) {
        out->inputChannelDensity[static_cast<size_t>(ic)] /=
            static_cast<double>(n * plane);
    }
    out->inputDensity = static_cast<double>(total) /
                        static_cast<double>(x.numel());
}

} // namespace nn
} // namespace procrustes
