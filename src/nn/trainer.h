/**
 * @file
 * Minibatch training loop with per-epoch validation.
 */

#ifndef PROCRUSTES_NN_TRAINER_H_
#define PROCRUSTES_NN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/data.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/sgd.h"

namespace procrustes {
namespace nn {

/**
 * Everything the network measured during one training step: one
 * LayerStepReport per reporting layer, in layer order, sampled after
 * the optimizer update that closed the step (so each report's mask is
 * the post-update live mask). This is the unit the workload-trace
 * pipeline (arch/workload_trace.h) aggregates.
 */
struct StepTelemetry
{
    int64_t epoch = 0;
    int64_t step = 0;        //!< global step index across epochs
    int64_t batchSize = 0;
    double batchLoss = 0.0;
    std::vector<LayerStepReport> reports;
};

/**
 * Per-step observer invoked by trainNetwork after each optimizer step.
 * Collecting reports costs O(activations) per step, so the trainer
 * only gathers them when an observer is attached.
 */
using StepObserver = std::function<void(const StepTelemetry &)>;

/** One epoch's summary statistics. */
struct EpochStats
{
    int64_t epoch = 0;
    double trainLoss = 0.0;
    double trainAccuracy = 0.0;
    double valAccuracy = 0.0;
    double weightSparsity = 0.0;  //!< zero fraction over prunable params
};

/** Training-loop configuration. */
struct TrainConfig
{
    int64_t epochs = 10;
    int64_t batchSize = 16;
    uint64_t shuffleSeed = 7;
};

/**
 * Run SGD-style training of `net` on `train`, validating on `val` after
 * each epoch; returns one EpochStats per epoch. The loop is
 * deterministic given the seeds in the configs. When `observer` is
 * non-null it receives a StepTelemetry after every optimizer step
 * (e.g. arch::WorkloadTrace::observer() to drive the accelerator
 * model from the measured run).
 */
std::vector<EpochStats> trainNetwork(Network &net, Optimizer &opt,
                                     const Dataset &train,
                                     const Dataset &val,
                                     const TrainConfig &cfg,
                                     const StepObserver &observer = {});

/** Evaluate top-1 accuracy of `net` on a dataset (inference mode). */
double evaluateAccuracy(Network &net, const Dataset &ds,
                        int64_t batch_size = 64);

/** Zero fraction across all prunable parameters of a network. */
double weightSparsity(Network &net);

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_TRAINER_H_
