/**
 * @file
 * Minibatch training loop with per-epoch validation.
 */

#ifndef PROCRUSTES_NN_TRAINER_H_
#define PROCRUSTES_NN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "nn/data.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/sgd.h"

namespace procrustes {
namespace nn {

/** One epoch's summary statistics. */
struct EpochStats
{
    int64_t epoch = 0;
    double trainLoss = 0.0;
    double trainAccuracy = 0.0;
    double valAccuracy = 0.0;
    double weightSparsity = 0.0;  //!< zero fraction over prunable params
};

/** Training-loop configuration. */
struct TrainConfig
{
    int64_t epochs = 10;
    int64_t batchSize = 16;
    uint64_t shuffleSeed = 7;
};

/**
 * Run SGD-style training of `net` on `train`, validating on `val` after
 * each epoch; returns one EpochStats per epoch. The loop is
 * deterministic given the seeds in the configs.
 */
std::vector<EpochStats> trainNetwork(Network &net, Optimizer &opt,
                                     const Dataset &train,
                                     const Dataset &val,
                                     const TrainConfig &cfg);

/** Evaluate top-1 accuracy of `net` on a dataset (inference mode). */
double evaluateAccuracy(Network &net, const Dataset &ds,
                        int64_t batch_size = 64);

/** Zero fraction across all prunable parameters of a network. */
double weightSparsity(Network &net);

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_TRAINER_H_
