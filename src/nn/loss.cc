#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace procrustes {
namespace nn {

double
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    const Shape &ls = logits.shape();
    PROCRUSTES_ASSERT(ls.rank() == 2, "logits must be [N, classes]");
    const int64_t n = ls[0];
    const int64_t classes = ls[1];
    PROCRUSTES_ASSERT(static_cast<int64_t>(labels.size()) == n,
                      "label count mismatch");

    probs_ = Tensor(ls);
    labels_ = labels;

    const float *pl = logits.data();
    float *pp = probs_.data();
    double loss = 0.0;
    int64_t correct = 0;
    for (int64_t in = 0; in < n; ++in) {
        const float *row = pl + in * classes;
        float *prow = pp + in * classes;
        float maxv = row[0];
        int64_t argmax = 0;
        for (int64_t j = 1; j < classes; ++j) {
            if (row[j] > maxv) {
                maxv = row[j];
                argmax = j;
            }
        }
        double denom = 0.0;
        for (int64_t j = 0; j < classes; ++j)
            denom += std::exp(static_cast<double>(row[j] - maxv));
        const int y = labels[static_cast<size_t>(in)];
        PROCRUSTES_ASSERT(y >= 0 && y < classes, "label out of range");
        for (int64_t j = 0; j < classes; ++j) {
            prow[j] = static_cast<float>(
                std::exp(static_cast<double>(row[j] - maxv)) / denom);
        }
        loss -= std::log(std::max(
            static_cast<double>(prow[y]), 1e-12));
        if (argmax == y)
            ++correct;
    }
    accuracy_ = static_cast<double>(correct) / static_cast<double>(n);
    return loss / static_cast<double>(n);
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    const Shape &ps = probs_.shape();
    PROCRUSTES_ASSERT(ps.rank() == 2, "backward before forward");
    const int64_t n = ps[0];
    const int64_t classes = ps[1];

    Tensor dlogits = probs_;
    float *pd = dlogits.data();
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int64_t in = 0; in < n; ++in) {
        pd[in * classes + labels_[static_cast<size_t>(in)]] -= 1.0f;
        for (int64_t j = 0; j < classes; ++j)
            pd[in * classes + j] *= inv_n;
    }
    return dlogits;
}

} // namespace nn
} // namespace procrustes
