#include "nn/trainer.h"

namespace procrustes {
namespace nn {

std::vector<EpochStats>
trainNetwork(Network &net, Optimizer &opt, const Dataset &train,
             const Dataset &val, const TrainConfig &cfg,
             const StepObserver &observer)
{
    SoftmaxCrossEntropy loss;
    std::vector<EpochStats> history;
    const auto params = net.params();
    int64_t global_step = 0;

    for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        const auto order =
            epochOrder(train.size(), cfg.shuffleSeed, epoch);
        // Sample-weighted sums: the last batch of an epoch may be
        // ragged (train.size() % batchSize != 0) and must count in
        // proportion to its size, matching evaluateAccuracy.
        double loss_sum = 0.0;
        double acc_sum = 0.0;
        int64_t samples = 0;

        for (int64_t start = 0; start < train.size();
             start += cfg.batchSize) {
            const int64_t end =
                std::min(start + cfg.batchSize, train.size());
            const int64_t n = end - start;
            std::vector<int64_t> idx(order.begin() + start,
                                     order.begin() + end);
            const Tensor x = train.batch(idx);
            const auto y = train.batchLabels(idx);

            net.zeroGrad();
            const Tensor logits = net.forward(x, /*training=*/true);
            const double batch_loss = loss.forward(logits, y);
            loss_sum += batch_loss * static_cast<double>(n);
            acc_sum += loss.accuracy() * static_cast<double>(n);
            net.backward(loss.backward());
            opt.step(params);

            if (observer) {
                StepTelemetry t;
                t.epoch = epoch;
                t.step = global_step;
                t.batchSize = n;
                t.batchLoss = batch_loss;
                for (size_t li = 0; li < net.size(); ++li) {
                    LayerStepReport r;
                    if (net.layer(li)->stepReport(&r))
                        t.reports.push_back(std::move(r));
                }
                observer(t);
            }
            ++global_step;
            samples += n;
        }

        EpochStats st;
        st.epoch = epoch;
        st.trainLoss =
            samples ? loss_sum / static_cast<double>(samples) : 0.0;
        st.trainAccuracy =
            samples ? acc_sum / static_cast<double>(samples) : 0.0;
        st.valAccuracy = evaluateAccuracy(net, val);
        st.weightSparsity = weightSparsity(net);
        history.push_back(st);
    }
    return history;
}

double
evaluateAccuracy(Network &net, const Dataset &ds, int64_t batch_size)
{
    SoftmaxCrossEntropy loss;
    double correct_weighted = 0.0;
    int64_t seen = 0;
    for (int64_t start = 0; start < ds.size(); start += batch_size) {
        const int64_t end = std::min(start + batch_size, ds.size());
        std::vector<int64_t> idx;
        for (int64_t i = start; i < end; ++i)
            idx.push_back(i);
        const Tensor x = ds.batch(idx);
        const auto y = ds.batchLabels(idx);
        const Tensor logits = net.forward(x, /*training=*/false);
        loss.forward(logits, y);
        correct_weighted +=
            loss.accuracy() * static_cast<double>(end - start);
        seen += end - start;
    }
    return seen ? correct_weighted / static_cast<double>(seen) : 0.0;
}

double
weightSparsity(Network &net)
{
    int64_t zeros = 0;
    int64_t total = 0;
    for (Param *p : net.params()) {
        if (!p->prunable)
            continue;
        const float *v = p->value.data();
        const int64_t n = p->value.numel();
        for (int64_t i = 0; i < n; ++i) {
            if (v[i] == 0.0f)
                ++zeros;
        }
        total += n;
    }
    return total ? static_cast<double>(zeros) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace nn
} // namespace procrustes
