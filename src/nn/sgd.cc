#include "nn/sgd.h"

namespace procrustes {
namespace nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum)
{
    PROCRUSTES_ASSERT(lr > 0.0f, "learning rate must be positive");
    PROCRUSTES_ASSERT(momentum >= 0.0f && momentum < 1.0f,
                      "momentum out of range");
}

void
Sgd::step(const std::vector<Param *> &params)
{
    if (velocity_.empty() && momentum_ > 0.0f) {
        for (Param *p : params)
            velocity_.emplace_back(p->value.shape());
    }
    if (momentum_ > 0.0f) {
        PROCRUSTES_ASSERT(velocity_.size() == params.size(),
                          "parameter set changed between steps");
    }
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Param *p = params[pi];
        float *v = p->value.data();
        const float *g = p->grad.data();
        const int64_t n = p->value.numel();
        if (momentum_ > 0.0f) {
            PROCRUSTES_ASSERT(velocity_[pi].numel() == n,
                              "parameter shape changed between steps");
            float *vel = velocity_[pi].data();
            if (p->prunable) {
                // Pruned positions hold an exact weight zero and get a
                // masked (zero) gradient. Stale velocity from before
                // the prune must not re-animate them: `v -= lr * vel`
                // would move the weight off exact zero, violating the
                // CSB mask/value invariant. Drop the velocity there.
                for (int64_t i = 0; i < n; ++i) {
                    if (v[i] == 0.0f && g[i] == 0.0f) {
                        vel[i] = 0.0f;
                        continue;
                    }
                    vel[i] = momentum_ * vel[i] + g[i];
                    v[i] -= lr_ * vel[i];
                }
            } else {
                for (int64_t i = 0; i < n; ++i) {
                    vel[i] = momentum_ * vel[i] + g[i];
                    v[i] -= lr_ * vel[i];
                }
            }
        } else {
            for (int64_t i = 0; i < n; ++i)
                v[i] -= lr_ * g[i];
        }
    }
    ++iteration_;
}

void
Sgd::serializeState(ByteWriter &w) const
{
    Optimizer::serializeState(w);
    // velocity_ is lazily sized on the first momentum step; a fresh
    // optimizer checkpointed before any step has none, and restore
    // must reproduce that exact lazy state.
    w.writeU8(velocity_.empty() ? 0 : 1);
    if (!velocity_.empty()) {
        w.writeU32(static_cast<uint32_t>(velocity_.size()));
        for (const Tensor &v : velocity_)
            w.writeTensor(v);
    }
}

void
Sgd::restoreState(ByteReader &r)
{
    Optimizer::restoreState(r);
    velocity_.clear();
    if (r.readU8()) {
        const uint32_t count = r.readU32();
        velocity_.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            velocity_.push_back(r.readTensor());
    }
}

} // namespace nn
} // namespace procrustes
