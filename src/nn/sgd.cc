#include "nn/sgd.h"

namespace procrustes {
namespace nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum)
{
    PROCRUSTES_ASSERT(lr > 0.0f, "learning rate must be positive");
    PROCRUSTES_ASSERT(momentum >= 0.0f && momentum < 1.0f,
                      "momentum out of range");
}

void
Sgd::step(const std::vector<Param *> &params)
{
    if (velocity_.empty() && momentum_ > 0.0f) {
        for (Param *p : params)
            velocity_.emplace_back(p->value.shape());
    }
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Param *p = params[pi];
        float *v = p->value.data();
        const float *g = p->grad.data();
        const int64_t n = p->value.numel();
        if (momentum_ > 0.0f) {
            float *vel = velocity_[pi].data();
            for (int64_t i = 0; i < n; ++i) {
                vel[i] = momentum_ * vel[i] + g[i];
                v[i] -= lr_ * vel[i];
            }
        } else {
            for (int64_t i = 0; i < n; ++i)
                v[i] -= lr_ * g[i];
        }
    }
    ++iteration_;
}

} // namespace nn
} // namespace procrustes
