#include "nn/activations.h"

namespace procrustes {
namespace nn {

Tensor
ReLU::forward(const Tensor &x, bool)
{
    Tensor y(x.shape());
    mask_ = Tensor(x.shape());
    const float *px = x.data();
    float *py = y.data();
    float *pm = mask_.data();
    const int64_t n = x.numel();
    int64_t zeros = 0;
    for (int64_t i = 0; i < n; ++i) {
        if (px[i] > 0.0f) {
            py[i] = px[i];
            pm[i] = 1.0f;
        } else {
            ++zeros;
        }
    }
    lastSparsity_ = n ? static_cast<double>(zeros) /
                            static_cast<double>(n)
                      : 0.0;
    return y;
}

bool
ReLU::stepReport(LayerStepReport *out) const
{
    if (mask_.numel() == 0)
        return false;
    out->layerName = name_;
    out->kind = LayerStepReport::Kind::Activation;
    out->batch = mask_.shape().rank() > 0 ? mask_.shape()[0] : 0;
    out->outputDensity = 1.0 - lastSparsity_;
    return true;
}

Tensor
ReLU::backward(const Tensor &dy)
{
    PROCRUSTES_ASSERT(dy.shape() == mask_.shape(),
                      "dy shape mismatch in relu backward");
    Tensor dx(dy.shape());
    const float *pdy = dy.data();
    const float *pm = mask_.data();
    float *pdx = dx.data();
    const int64_t n = dy.numel();
    for (int64_t i = 0; i < n; ++i)
        pdx[i] = pdy[i] * pm[i];
    return dx;
}

} // namespace nn
} // namespace procrustes
