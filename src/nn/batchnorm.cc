#include "nn/batchnorm.h"

#include <cmath>

namespace procrustes {
namespace nn {

BatchNorm2d::BatchNorm2d(int64_t channels, const std::string &layer_name,
                         float momentum, float eps)
    : channels_(channels),
      name_(layer_name),
      momentum_(momentum),
      eps_(eps)
{
    PROCRUSTES_ASSERT(channels > 0, "batchnorm channels must be positive");
    gamma_.init(Shape{channels}, name_ + ".gamma", /*can_prune=*/false);
    beta_.init(Shape{channels}, name_ + ".beta", /*can_prune=*/false);
    gamma_.value.fill(1.0f);
    runningMean_ = Tensor(Shape{channels});
    runningVar_ = Tensor(Shape{channels});
    runningVar_.fill(1.0f);
}

std::vector<Param *>
BatchNorm2d::params()
{
    return {&gamma_, &beta_};
}

void
BatchNorm2d::serializeState(ByteWriter &w) const
{
    w.writeTensor(runningMean_);
    w.writeTensor(runningVar_);
}

void
BatchNorm2d::restoreState(ByteReader &r)
{
    Tensor mean = r.readTensor();
    Tensor var = r.readTensor();
    PROCRUSTES_ASSERT(mean.numel() == channels_ &&
                          var.numel() == channels_,
                      "batchnorm running-stat shape mismatch on restore");
    runningMean_ = std::move(mean);
    runningVar_ = std::move(var);
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool training)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == channels_,
                      "batchnorm expects NCHW with matching channels");
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t hw = xs[2] * xs[3];
    const int64_t count = n * hw;

    Tensor y(xs);
    cachedXhat_ = Tensor(xs);
    cachedInvStd_.assign(static_cast<size_t>(c), 0.0f);
    cachedCount_ = count;

    const float *px = x.data();
    float *py = y.data();
    float *pxh = cachedXhat_.data();

    for (int64_t ic = 0; ic < c; ++ic) {
        float m;
        float v;
        if (training) {
            double sum = 0.0;
            for (int64_t in = 0; in < n; ++in) {
                const float *row = px + (in * c + ic) * hw;
                for (int64_t i = 0; i < hw; ++i)
                    sum += row[i];
            }
            m = static_cast<float>(sum / static_cast<double>(count));
            double var = 0.0;
            for (int64_t in = 0; in < n; ++in) {
                const float *row = px + (in * c + ic) * hw;
                for (int64_t i = 0; i < hw; ++i) {
                    const double d = row[i] - m;
                    var += d * d;
                }
            }
            v = static_cast<float>(var / static_cast<double>(count));
            runningMean_.data()[ic] =
                (1.0f - momentum_) * runningMean_.data()[ic] +
                momentum_ * m;
            runningVar_.data()[ic] =
                (1.0f - momentum_) * runningVar_.data()[ic] +
                momentum_ * v;
        } else {
            m = runningMean_.data()[ic];
            v = runningVar_.data()[ic];
        }
        const float inv_std = 1.0f / std::sqrt(v + eps_);
        cachedInvStd_[static_cast<size_t>(ic)] = inv_std;
        const float g = gamma_.value.data()[ic];
        const float b = beta_.value.data()[ic];
        for (int64_t in = 0; in < n; ++in) {
            const float *row = px + (in * c + ic) * hw;
            float *yrow = py + (in * c + ic) * hw;
            float *xhrow = pxh + (in * c + ic) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                const float xh = (row[i] - m) * inv_std;
                xhrow[i] = xh;
                yrow[i] = g * xh + b;
            }
        }
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &dy)
{
    const Shape &xs = cachedXhat_.shape();
    PROCRUSTES_ASSERT(dy.shape() == xs, "dy shape mismatch in bn backward");
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t hw = xs[2] * xs[3];
    const auto count = static_cast<float>(cachedCount_);

    Tensor dx(xs);
    const float *pdy = dy.data();
    const float *pxh = cachedXhat_.data();
    float *pdx = dx.data();

    for (int64_t ic = 0; ic < c; ++ic) {
        // Accumulate dL/dgamma, dL/dbeta, and the two reduction terms
        // of the standard batch-norm input gradient.
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (int64_t in = 0; in < n; ++in) {
            const float *dyr = pdy + (in * c + ic) * hw;
            const float *xhr = pxh + (in * c + ic) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                sum_dy += dyr[i];
                sum_dy_xhat += dyr[i] * xhr[i];
            }
        }
        gamma_.grad.data()[ic] += static_cast<float>(sum_dy_xhat);
        beta_.grad.data()[ic] += static_cast<float>(sum_dy);

        const float g = gamma_.value.data()[ic];
        const float inv_std = cachedInvStd_[static_cast<size_t>(ic)];
        const auto mean_dy = static_cast<float>(
            sum_dy / static_cast<double>(count));
        const auto mean_dy_xhat = static_cast<float>(
            sum_dy_xhat / static_cast<double>(count));
        for (int64_t in = 0; in < n; ++in) {
            const float *dyr = pdy + (in * c + ic) * hw;
            const float *xhr = pxh + (in * c + ic) * hw;
            float *dxr = pdx + (in * c + ic) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                dxr[i] = g * inv_std *
                         (dyr[i] - mean_dy - xhr[i] * mean_dy_xhat);
            }
        }
    }
    return dx;
}

} // namespace nn
} // namespace procrustes
