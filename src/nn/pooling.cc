#include "nn/pooling.h"

#include <limits>

namespace procrustes {
namespace nn {

MaxPool2d::MaxPool2d(int64_t kernel, const std::string &layer_name)
    : kernel_(kernel), name_(layer_name)
{
    PROCRUSTES_ASSERT(kernel > 0, "pool kernel must be positive");
}

Tensor
MaxPool2d::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4, "pool input must be NCHW");
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t h = xs[2];
    const int64_t w = xs[3];
    PROCRUSTES_ASSERT(h % kernel_ == 0 && w % kernel_ == 0,
                      "pool input not divisible by kernel");
    const int64_t ph = h / kernel_;
    const int64_t pw = w / kernel_;

    inputShape_ = xs;
    Tensor y(Shape{n, c, ph, pw});
    argmax_.assign(static_cast<size_t>(y.numel()), 0);

    const float *px = x.data();
    float *py = y.data();
    int64_t oidx = 0;
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const float *plane = px + (in * c + ic) * h * w;
            for (int64_t op = 0; op < ph; ++op) {
                for (int64_t oq = 0; oq < pw; ++oq) {
                    float best = -std::numeric_limits<float>::infinity();
                    int64_t best_idx = 0;
                    for (int64_t kr = 0; kr < kernel_; ++kr) {
                        for (int64_t kc = 0; kc < kernel_; ++kc) {
                            const int64_t ih = op * kernel_ + kr;
                            const int64_t iw = oq * kernel_ + kc;
                            const int64_t flat = ih * w + iw;
                            if (plane[flat] > best) {
                                best = plane[flat];
                                best_idx = (in * c + ic) * h * w + flat;
                            }
                        }
                    }
                    py[oidx] = best;
                    argmax_[static_cast<size_t>(oidx)] = best_idx;
                    ++oidx;
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &dy)
{
    PROCRUSTES_ASSERT(inputShape_.rank() == 4, "backward before forward");
    Tensor dx(inputShape_);
    const float *pdy = dy.data();
    float *pdx = dx.data();
    const int64_t n = dy.numel();
    PROCRUSTES_ASSERT(static_cast<size_t>(n) == argmax_.size(),
                      "dy size mismatch in pool backward");
    for (int64_t i = 0; i < n; ++i)
        pdx[argmax_[static_cast<size_t>(i)]] += pdy[i];
    return dx;
}

Tensor
GlobalAvgPool::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4, "gap input must be NCHW");
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t hw = xs[2] * xs[3];
    inputShape_ = xs;

    Tensor y(Shape{n, c});
    const float *px = x.data();
    float *py = y.data();
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const float *row = px + (in * c + ic) * hw;
            double acc = 0.0;
            for (int64_t i = 0; i < hw; ++i)
                acc += row[i];
            py[in * c + ic] =
                static_cast<float>(acc / static_cast<double>(hw));
        }
    }
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &dy)
{
    PROCRUSTES_ASSERT(inputShape_.rank() == 4, "backward before forward");
    const int64_t n = inputShape_[0];
    const int64_t c = inputShape_[1];
    const int64_t hw = inputShape_[2] * inputShape_[3];
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, c}),
                      "dy shape mismatch in gap backward");

    Tensor dx(inputShape_);
    const float *pdy = dy.data();
    float *pdx = dx.data();
    const float scale = 1.0f / static_cast<float>(hw);
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const float g = pdy[in * c + ic] * scale;
            float *row = pdx + (in * c + ic) * hw;
            for (int64_t i = 0; i < hw; ++i)
                row[i] = g;
        }
    }
    return dx;
}

Tensor
Flatten::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() >= 2, "flatten input rank must be >= 2");
    inputShape_ = xs;
    Tensor y = x;
    int64_t features = 1;
    for (int i = 1; i < xs.rank(); ++i)
        features *= xs[i];
    y.reshape(Shape{xs[0], features});
    return y;
}

Tensor
Flatten::backward(const Tensor &dy)
{
    PROCRUSTES_ASSERT(inputShape_.rank() >= 2, "backward before forward");
    Tensor dx = dy;
    dx.reshape(inputShape_);
    return dx;
}

} // namespace nn
} // namespace procrustes
