/**
 * @file
 * 2-D batch normalization with manual backprop.
 *
 * Batch norm matters to Procrustes beyond accuracy: Section II-B
 * observes that back-propagating through it *destroys* the sparsity of
 * dL/dy, which is why the accelerator exploits only weight sparsity in
 * the backward pass. The implementation exposes the gradient-density
 * measurement used to verify that claim in tests.
 */

#ifndef PROCRUSTES_NN_BATCHNORM_H_
#define PROCRUSTES_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace procrustes {
namespace nn {

/** Per-channel batch normalization over N, H, W of an NCHW tensor. */
class BatchNorm2d : public Layer
{
  public:
    /** Construct for `channels` feature maps. */
    BatchNorm2d(int64_t channels, const std::string &layer_name,
                float momentum = 0.1f, float eps = 1e-5f);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    std::string name() const override { return name_; }

    /**
     * Running mean/var are trained state that is NOT reachable through
     * params() (they are updated by forward(), not the optimizer), so
     * they travel through the layer-state checkpoint contract — a
     * params-only snapshot restores a net that evaluates with fresh
     * (0, 1) statistics.
     */
    void serializeState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

    Param &gamma() { return gamma_; }
    Param &beta() { return beta_; }

    /** Running statistics (inference-mode normalizers), for tests. */
    const Tensor &runningMean() const { return runningMean_; }
    const Tensor &runningVar() const { return runningVar_; }

  private:
    int64_t channels_;
    std::string name_;
    float momentum_;
    float eps_;
    Param gamma_;
    Param beta_;
    Tensor runningMean_;
    Tensor runningVar_;
    // Cached forward-pass state for backward().
    Tensor cachedXhat_;
    std::vector<float> cachedInvStd_;
    int64_t cachedCount_ = 0;
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_BATCHNORM_H_
