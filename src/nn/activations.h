/**
 * @file
 * Activation layers.
 *
 * ReLU is the activation the paper leans on: its zero outputs are the
 * *activation sparsity* Procrustes exploits during the weight-update
 * phase (Section II-B).
 */

#ifndef PROCRUSTES_NN_ACTIVATIONS_H_
#define PROCRUSTES_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace procrustes {
namespace nn {

/** Rectified linear unit, elementwise max(0, x). */
class ReLU : public Layer
{
  public:
    explicit ReLU(const std::string &layer_name) : name_(layer_name) {}

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return name_; }

    /** Fraction of zeros produced by the most recent forward pass. */
    double lastOutputSparsity() const { return lastSparsity_; }

    /**
     * Telemetry: an Activation-kind report whose outputDensity is the
     * measured non-zero fraction of the last forward — the activation
     * sparsity the weight-update phase exploits (Section II-B).
     */
    bool stepReport(LayerStepReport *out) const override;

  private:
    std::string name_;
    Tensor mask_;           //!< 1 where x > 0, cached for backward
    double lastSparsity_ = 0.0;
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_ACTIVATIONS_H_
