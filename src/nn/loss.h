/**
 * @file
 * Softmax cross-entropy loss (fused, numerically stable).
 */

#ifndef PROCRUSTES_NN_LOSS_H_
#define PROCRUSTES_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace nn {

/**
 * Fused softmax + cross-entropy over a batch of logits.
 *
 * forward() returns mean loss; backward() returns dL/dlogits for the
 * same batch (softmax(x) - onehot(y)) / N.
 */
class SoftmaxCrossEntropy
{
  public:
    /** Compute mean cross-entropy for logits [N, classes]. */
    double forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient with respect to the logits of the last forward(). */
    Tensor backward() const;

    /** Top-1 accuracy of the last forward() batch. */
    double accuracy() const { return accuracy_; }

  private:
    Tensor probs_;
    std::vector<int> labels_;
    double accuracy_ = 0.0;
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_LOSS_H_
