/**
 * @file
 * The Dropback sparse-training optimizer family (Algorithms 2-4).
 *
 * Dropback (Golub et al., SysML 2019) trains on a fixed weight budget:
 * in every iteration only the k weights with the largest accumulated
 * gradient magnitude are tracked; all others are "dropped back" to
 * their initial values. Procrustes adapts it for hardware (Section III)
 * with two changes, both implemented here behind configuration flags:
 *
 *  1. *Initial-weight decay* (Algorithm 3): untracked weights return to
 *     lambda^t * W(0) instead of W(0); with lambda = 0.9 all initial
 *     weights reach exactly zero within ~1000 iterations, creating the
 *     computation sparsity the accelerator converts into energy
 *     savings.
 *  2. *Streaming threshold selection* (Algorithm 4): the global sort of
 *     all accumulated gradients is replaced by a DUMIQUE quantile
 *     estimate used as a value threshold.
 *
 * All four paper configurations are expressible:
 *   - Algorithm 2 (original Dropback):  decay off, ExactSort.
 *   - Algorithm 3 (decay):              decay on,  ExactSort.
 *   - full Procrustes scheme:           decay on,  QuantileEstimate.
 *   - decay-off QE (ablation):          decay off, QuantileEstimate.
 */

#ifndef PROCRUSTES_SPARSE_DROPBACK_H_
#define PROCRUSTES_SPARSE_DROPBACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/sgd.h"
#include "sparse/quantile.h"
#include "sparse/weight_recompute.h"

namespace procrustes {
namespace sparse {

/** How the tracked-set threshold is chosen each iteration. */
enum class SelectionMode
{
    ExactSort,          //!< nth_element over all candidates (Alg 2/3)
    QuantileEstimate,   //!< streaming DUMIQUE threshold (Alg 4)
};

/** Dropback optimizer configuration. */
struct DropbackConfig
{
    /** Target compression: track numel/sparsity weights (e.g. 10x). */
    double sparsity = 10.0;

    /** SGD learning rate eta. */
    float lr = 0.05f;

    /**
     * Initial-weight decay lambda per iteration; 1.0 disables decay
     * (Algorithm 2), the paper uses 0.9 (Algorithm 3).
     */
    float initDecay = 1.0f;

    /**
     * Iteration after which the decayed initial weights are clamped to
     * exactly zero (paper: all are zero by iteration 1000).
     */
    int64_t decayHorizon = 1000;

    /** Threshold selection scheme. */
    SelectionMode selection = SelectionMode::ExactSort;

    /** DUMIQUE adjustment rate (paper: 1e-3). */
    double quantileRho = 1e-3;

    /** DUMIQUE initial estimate (paper: 1e-6). */
    double quantileInit = 1e-6;

    /** QE unit lanes (paper: 4 updates/cycle). */
    int quantileWidth = 4;

    /**
     * Regenerate initial weights through the WR unit instead of storing
     * a W(0) copy (the hardware always does this; keeping both paths
     * lets tests prove they are equivalent).
     */
    bool useWeightRecompute = false;

    /** WR unit seed (only used with useWeightRecompute). */
    uint64_t wrSeed = 42;
};

/**
 * Dropback optimizer.
 *
 * Non-prunable parameters (biases, batch-norm affine) receive plain SGD
 * updates. Prunable parameters carry per-weight accumulated-update
 * state; each step computes candidate magnitudes
 * |acc_i - lr * g_i|, selects the survivors (globally across all
 * prunable tensors, as the paper's sort is global), and recomposes
 * values as lambda^t * W(0) + acc.
 */
class DropbackOptimizer : public nn::Optimizer
{
  public:
    explicit DropbackOptimizer(const DropbackConfig &cfg);

    void step(const std::vector<nn::Param *> &params) override;

    /** Fraction of prunable weights currently tracked. */
    double trackedFraction() const;

    /** Threshold used by the most recent step. */
    double lastThreshold() const { return lastThreshold_; }

    /** Current lambda^t factor (0 after the decay horizon). */
    float currentDecayFactor() const;

    const DropbackConfig &config() const { return cfg_; }

  private:
    /**
     * Per-parameter sparse-training state.
     *
     * Algorithm 3 only decays *pruned* weights: a tracked weight
     * evolves as W(t) = W(t-1) - eta*grad, keeping whatever initial
     * component it had when it (re-)entered the tracked set. `emb`
     * stores that frozen component (lambda^t0 * W0 captured at the
     * pruned->tracked transition), so value = emb + acc for tracked
     * weights and lambda^t * W0 for pruned ones. In hardware this is
     * one extra FP add at tracking time (the WR output is folded into
     * the stored accumulated gradient); the selection criterion still
     * uses the pure accumulated gradient.
     */
    struct ParamState
    {
        Tensor w0;                 //!< stored initial values (or empty)
        Tensor acc;                //!< accumulated updates (0 untracked)
        Tensor emb;                //!< frozen initial component
        std::vector<uint8_t> tracked;  //!< per-weight tracked flag
        float initStd = 0.0f;      //!< WR scaling factor for this tensor
        uint64_t indexBase = 0;    //!< global flat index of element 0
        bool prunable = true;
    };

    void captureInitialState(const std::vector<nn::Param *> &params);
    double selectThreshold(const std::vector<nn::Param *> &params);

    /** Initial value of flat element i in parameter pi, undecayed. */
    float initialValue(const ParamState &st, int64_t i) const;

    DropbackConfig cfg_;
    WeightRecomputeUnit wr_;
    ParallelQuantileEstimator qe_;
    std::vector<ParamState> state_;
    bool initialized_ = false;
    double lastThreshold_ = 0.0;
    int64_t trackedCount_ = 0;
    int64_t prunableCount_ = 0;
};

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_DROPBACK_H_
