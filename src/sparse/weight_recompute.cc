#include "sparse/weight_recompute.h"

#include "common/rng.h"

namespace procrustes {
namespace sparse {

double
WeightRecomputeUnit::standardVariate(uint64_t index) const
{
    // Sum of three centred uniform int32 draws has standard deviation
    // exactly 2^31 (each lane contributes (2^32)^2 / 12 of variance),
    // so dividing by 2^31 yields a unit-variance, zero-mean variate.
    const int64_t sum3 = statelessGaussianSum3(seed_, index);
    return static_cast<double>(sum3) * 0x1.0p-31;
}

float
WeightRecomputeUnit::initialWeight(uint64_t index, float init_std,
                                   float decay) const
{
    if (decay == 0.0f)
        return 0.0f;
    return static_cast<float>(standardVariate(index)) * init_std * decay;
}

} // namespace sparse
} // namespace procrustes
