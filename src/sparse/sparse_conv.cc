#include "sparse/sparse_conv.h"

#include <atomic>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "kernels/im2col.h"   // validOutRange: the shared padding clip

namespace procrustes {
namespace sparse {

namespace {

using kernels::validOutRange;

/** Validate inputs and derive the output spatial extent. */
int64_t
outExtent(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    // Check the numerator, not the quotient: a negative numerator
    // truncates toward zero and would masquerade as extent 1.
    PROCRUSTES_ASSERT(in + 2 * pad >= kernel,
                      "convolution output would be empty");
    return (in + 2 * pad - kernel) / stride + 1;
}

/** One non-zero weight of a block with its pre-clipped output ranges. */
struct Tap
{
    float wt;
    int64_t r, s;
    int64_t pLo, pHi;   //!< valid output rows [pLo, pHi)
    int64_t qLo, qHi;   //!< valid output cols [qLo, qHi)
};

/** Gather the non-zero taps of block b (zero-skipping, as the PEs do). */
void
gatherTaps(const CsbTensor &w, int64_t b, int64_t s_ext, int64_t h,
           int64_t width, int64_t p_ext, int64_t q_ext, int64_t stride,
           int64_t pad, std::vector<Tap> *taps)
{
    taps->clear();
    const auto vals = w.blockDense(b);
    for (int64_t e = 0; e < w.blockElems(); ++e) {
        const float wt = vals[static_cast<size_t>(e)];
        if (wt == 0.0f)
            continue;
        Tap t;
        t.wt = wt;
        t.r = e / s_ext;
        t.s = e % s_ext;
        validOutRange(p_ext, h, t.r, stride, pad, &t.pLo, &t.pHi);
        validOutRange(q_ext, width, t.s, stride, pad, &t.qLo, &t.qHi);
        taps->push_back(t);
    }
}

/**
 * Gather the mask-live taps of block b. The weight-gradient pass reads
 * the mask array, not the packed values: it needs the *positions* that
 * stay live, while the value being replaced is irrelevant.
 */
void
gatherMaskTaps(const CsbTensor &w, int64_t b, int64_t s_ext, int64_t h,
               int64_t width, int64_t p_ext, int64_t q_ext,
               int64_t stride, int64_t pad, std::vector<Tap> *taps)
{
    taps->clear();
    for (int64_t e = 0; e < w.blockElems(); ++e) {
        if (!w.blockMaskBit(b, e))
            continue;
        Tap t;
        t.wt = 0.0f;   // unused: the pass produces weights, not reads them
        t.r = e / s_ext;
        t.s = e % s_ext;
        validOutRange(p_ext, h, t.r, stride, pad, &t.pLo, &t.pHi);
        validOutRange(q_ext, width, t.s, stride, pad, &t.qLo, &t.qHi);
        taps->push_back(t);
    }
}

} // namespace

Tensor
sparseConvForward(const Tensor &x, const CsbTensor &w, int64_t stride,
                  int64_t pad, int64_t *macs)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);

    Tensor y(Shape{n, k, p_ext, q_ext});
    const float *px = x.data();
    float *py = y.data();

    // Block-major traversal, partitioned over output channels: each
    // task owns the y[:, ok, :, :] planes of its ok range, so threads
    // accumulate into private output slices in a fixed order and the
    // result is deterministic. Zero blocks and zero weights are
    // skipped exactly as the PEs skip them. The executed-MAC tally is
    // per-tap arithmetic (clipped extents x batch), not an inner-loop
    // counter, so it costs nothing.
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, k, [&](int64_t ok0, int64_t ok1) {
        std::vector<Tap> taps;
        int64_t local_macs = 0;
        for (int64_t ok = ok0; ok < ok1; ++ok) {
            for (int64_t ic = 0; ic < c; ++ic) {
                const int64_t b = ok * c + ic;
                if (w.blockNnz(b) == 0)
                    continue;   // density known from pointer subtraction
                gatherTaps(w, b, s_ext, h, width, p_ext, q_ext, stride,
                           pad, &taps);
                for (const Tap &t : taps)
                    local_macs += (t.pHi - t.pLo) * (t.qHi - t.qLo) * n;
                for (int64_t in = 0; in < n; ++in) {
                    const float *xplane = px + (in * c + ic) * h * width;
                    float *yplane =
                        py + (in * k + ok) * p_ext * q_ext;
                    for (const Tap &t : taps) {
                        // Fold qLo into the base so the pointer never
                        // points before the buffer (s < pad would
                        // otherwise form an out-of-bounds base).
                        const int64_t iw0 =
                            t.qLo * stride + t.s - pad;
                        for (int64_t p = t.pLo; p < t.pHi; ++p) {
                            const float *xrow =
                                xplane +
                                (p * stride + t.r - pad) * width + iw0;
                            float *yrow = yplane + p * q_ext + t.qLo;
                            const int64_t nq = t.qHi - t.qLo;
                            for (int64_t q = 0; q < nq; ++q)
                                yrow[q] += t.wt * xrow[q * stride];
                        }
                    }
                }
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
    return y;
}

Tensor
sparseConvBackwardData(const Tensor &dy, const CsbTensor &w,
                       const Shape &x_shape, int64_t stride,
                       int64_t pad, int64_t *macs)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    PROCRUSTES_ASSERT(x_shape.rank() == 4 && x_shape[1] == ws[1],
                      "x shape mismatch");
    const int64_t n = x_shape[0];
    const int64_t c = ws[1];
    const int64_t h = x_shape[2];
    const int64_t width = x_shape[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    Tensor dx(x_shape);
    const float *pdy = dy.data();
    float *pdx = dx.data();

    // The backward pass consumes the same packed blocks through the
    // 180-degree-rotated view (Figure 2b). Partitioning over input
    // channels makes each task's dx[:, ic, :, :] planes private, so
    // the scatter-accumulation needs no locks and stays deterministic.
    // Zero dy operands are skipped (activation sparsity propagated by
    // the ReLU / max-pool backward); the executed-MAC tally is a sum
    // of per-chunk integers, so it is thread-count invariant too.
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, c, [&](int64_t ic0, int64_t ic1) {
        std::vector<Tap> taps;
        int64_t local_macs = 0;
        for (int64_t ic = ic0; ic < ic1; ++ic) {
            for (int64_t ok = 0; ok < k; ++ok) {
                const int64_t b = ok * c + ic;
                if (w.blockNnz(b) == 0)
                    continue;
                gatherTaps(w, b, s_ext, h, width, p_ext, q_ext, stride,
                           pad, &taps);
                for (int64_t in = 0; in < n; ++in) {
                    const float *dyplane =
                        pdy + (in * k + ok) * p_ext * q_ext;
                    float *dxplane =
                        pdx + (in * c + ic) * h * width;
                    for (const Tap &t : taps) {
                        const int64_t iw0 =
                            t.qLo * stride + t.s - pad;
                        for (int64_t p = t.pLo; p < t.pHi; ++p) {
                            float *dxrow =
                                dxplane +
                                (p * stride + t.r - pad) * width + iw0;
                            const float *dyrow =
                                dyplane + p * q_ext + t.qLo;
                            const int64_t nq = t.qHi - t.qLo;
                            for (int64_t q = 0; q < nq; ++q) {
                                const float g = dyrow[q];
                                if (g == 0.0f)
                                    continue;
                                dxrow[q * stride] += t.wt * g;
                                ++local_macs;
                            }
                        }
                    }
                }
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
    return dx;
}

void
sparseConvBackwardWeights(const Tensor &x, const Tensor &dy,
                          const CsbTensor &w, int64_t stride,
                          int64_t pad, Tensor *dw, int64_t *macs)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    PROCRUSTES_ASSERT(dw && dw->shape() == ws,
                      "dw shape mismatch in sparse conv backward");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    const float *px = x.data();
    const float *pdy = dy.data();
    float *pdw = dw->data();

    // The weight-update pass walks the same blocks as the other two
    // phases, but its output is the weight space itself: partitioning
    // over output channels makes each task's dW[ok, :, :, :] slice
    // private, and every live tap reduces its (n, p, q) space in a
    // fixed order — deterministic for any thread count. Pruned taps
    // are never touched, so their dW entries stay exactly as given.
    // Zero activations — the ReLU zeros that make x the sparse operand
    // of this phase — are skipped, and the executed MACs tallied.
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, k, [&](int64_t ok0, int64_t ok1) {
        std::vector<Tap> taps;
        int64_t local_macs = 0;
        for (int64_t ok = ok0; ok < ok1; ++ok) {
            for (int64_t ic = 0; ic < c; ++ic) {
                const int64_t b = ok * c + ic;
                if (w.blockNnz(b) == 0)
                    continue;
                gatherMaskTaps(w, b, s_ext, h, width, p_ext, q_ext,
                               stride, pad, &taps);
                for (const Tap &t : taps) {
                    const int64_t iw0 = t.qLo * stride + t.s - pad;
                    float acc = 0.0f;
                    for (int64_t in = 0; in < n; ++in) {
                        const float *dyplane =
                            pdy + (in * k + ok) * p_ext * q_ext;
                        const float *xplane =
                            px + (in * c + ic) * h * width;
                        for (int64_t p = t.pLo; p < t.pHi; ++p) {
                            const float *xrow =
                                xplane +
                                (p * stride + t.r - pad) * width + iw0;
                            const float *dyrow =
                                dyplane + p * q_ext + t.qLo;
                            const int64_t nq = t.qHi - t.qLo;
                            for (int64_t q = 0; q < nq; ++q) {
                                const float xv = xrow[q * stride];
                                if (xv == 0.0f)
                                    continue;
                                acc += dyrow[q] * xv;
                                ++local_macs;
                            }
                        }
                    }
                    pdw[((ok * c + ic) * r_ext + t.r) * s_ext + t.s] +=
                        acc;
                }
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
}

SparseConvMacCounts
sparseConvMacCounts(const Tensor &x, const CsbTensor &w, int64_t stride,
                    int64_t pad)
{
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, ws[2], stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);

    // Exact count: a live weight at tap (r, s) fires only for the
    // output positions whose input projection is in bounds, so clip
    // each tap's (p, q) iteration space against the padding halo —
    // matching what the executors above actually compute. One clipped
    // per-tap extent serves all three phases: forward multiplies,
    // backward-data scatters, and backward-weight reduces over the
    // identical (n, p, q) set.
    int64_t macs = 0;
    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            if (!w.blockMaskBit(b, e))
                continue;
            int64_t p_lo, p_hi, q_lo, q_hi;
            validOutRange(p_ext, h, e / s_ext, stride, pad, &p_lo, &p_hi);
            validOutRange(q_ext, width, e % s_ext, stride, pad, &q_lo,
                       &q_hi);
            macs += (p_hi - p_lo) * (q_hi - q_lo);
        }
    }
    macs *= xs[0];

    SparseConvMacCounts counts;
    counts.forward = macs;
    counts.backwardData = macs;
    counts.backwardWeight = macs;
    return counts;
}

SparseConvMacCounts
sparseConvMacCounts(const Tensor &x, const Tensor &dy, const CsbTensor &w,
                    int64_t stride, int64_t pad)
{
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    SparseConvMacCounts counts;
    const float *px = x.data();
    const float *pdy = dy.data();

    // Replay the executors' tap traversal once: every in-bounds
    // (tap, n, p, q) visit is one forward MAC, and it additionally
    // counts towards backward-data / backward-weight when the operand
    // the executor would multiply there — dy respectively x — is
    // non-zero.
    std::vector<Tap> taps;
    for (int64_t ok = 0; ok < k; ++ok) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const int64_t b = ok * c + ic;
            if (w.blockNnz(b) == 0)
                continue;
            gatherMaskTaps(w, b, s_ext, h, width, p_ext, q_ext, stride,
                           pad, &taps);
            for (const Tap &t : taps) {
                const int64_t iw0 = t.qLo * stride + t.s - pad;
                counts.forward +=
                    (t.pHi - t.pLo) * (t.qHi - t.qLo) * n;
                for (int64_t in = 0; in < n; ++in) {
                    const float *dyplane =
                        pdy + (in * k + ok) * p_ext * q_ext;
                    const float *xplane =
                        px + (in * c + ic) * h * width;
                    for (int64_t p = t.pLo; p < t.pHi; ++p) {
                        const float *dyrow =
                            dyplane + p * q_ext + t.qLo;
                        const float *xrow =
                            xplane +
                            (p * stride + t.r - pad) * width + iw0;
                        const int64_t nq = t.qHi - t.qLo;
                        for (int64_t q = 0; q < nq; ++q) {
                            if (dyrow[q] != 0.0f)
                                ++counts.backwardData;
                            if (xrow[q * stride] != 0.0f)
                                ++counts.backwardWeight;
                        }
                    }
                }
            }
        }
    }
    return counts;
}

int64_t
sparseConvMacs(const Tensor &x, const CsbTensor &w, int64_t stride,
               int64_t pad)
{
    return sparseConvMacCounts(x, w, stride, pad).forward;
}

} // namespace sparse
} // namespace procrustes
