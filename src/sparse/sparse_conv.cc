#include "sparse/sparse_conv.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/scratch_arena.h"
#include "common/thread_pool.h"
#include "kernels/im2col.h"   // validOutRange: the shared padding clip

namespace procrustes {
namespace sparse {

namespace {

using kernels::validOutRange;

/** Validate inputs and derive the output spatial extent. */
int64_t
outExtent(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    // Check the numerator, not the quotient: a negative numerator
    // truncates toward zero and would masquerade as extent 1.
    PROCRUSTES_ASSERT(in + 2 * pad >= kernel,
                      "convolution output would be empty");
    return (in + 2 * pad - kernel) / stride + 1;
}

/** One non-zero weight of a block with its pre-clipped output ranges. */
struct Tap
{
    float wt;
    int64_t r, s;
    int64_t pLo, pHi;   //!< valid output rows [pLo, pHi)
    int64_t qLo, qHi;   //!< valid output cols [qLo, qHi)
};

/**
 * Use the caller's tap pack when it matches this (mask, geometry) pair;
 * otherwise build one into `local` and return that. A caller-provided
 * pack with the wrong geometry is a contract violation, not a cache
 * miss — the layers test matches() themselves before passing one.
 */
const kernels::ConvTapPack *
resolvePack(const kernels::ConvTapPack *pack, const CsbTensor &w,
            int64_t h, int64_t width, int64_t stride, int64_t pad,
            kernels::ConvTapPack *local)
{
    if (pack) {
        PROCRUSTES_ASSERT(pack->matches(h, width, stride, pad),
                          "conv tap pack geometry mismatch");
        PROCRUSTES_ASSERT(static_cast<int64_t>(pack->blockOff.size()) ==
                              w.numBlocks() + 1,
                          "conv tap pack block count mismatch");
        return pack;
    }
    *local = kernels::packConvTaps(w, h, width, stride, pad);
    return local;
}

/**
 * Gather the mask-live taps of block b. The weight-gradient pass reads
 * the mask array, not the packed values: it needs the *positions* that
 * stay live, while the value being replaced is irrelevant.
 */
void
gatherMaskTaps(const CsbTensor &w, int64_t b, int64_t s_ext, int64_t h,
               int64_t width, int64_t p_ext, int64_t q_ext,
               int64_t stride, int64_t pad, std::vector<Tap> *taps)
{
    taps->clear();
    for (int64_t e = 0; e < w.blockElems(); ++e) {
        if (!w.blockMaskBit(b, e))
            continue;
        Tap t;
        t.wt = 0.0f;   // unused: the pass produces weights, not reads them
        t.r = e / s_ext;
        t.s = e % s_ext;
        validOutRange(p_ext, h, t.r, stride, pad, &t.pLo, &t.pHi);
        validOutRange(q_ext, width, t.s, stride, pad, &t.qLo, &t.qHi);
        taps->push_back(t);
    }
}

} // namespace

Tensor
sparseConvForward(const Tensor &x, const CsbTensor &w, int64_t stride,
                  int64_t pad, int64_t *macs,
                  const kernels::ConvTapPack *pack)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);

    Tensor y(Shape{n, k, p_ext, q_ext});
    const float *px = x.data();
    float *py = y.data();

    kernels::ConvTapPack local_pack;
    pack = resolvePack(pack, w, h, width, stride, pad, &local_pack);
    const kernels::ConvTap *all_taps = pack->taps.data();
    const float *wvals = w.valuesData();

    // Prepare the input once per call: zero-padded and phase-split by
    // the column stride, so every mask-live tap becomes a full-range
    // unit-stride streak over one contiguous row segment — the forward
    // kernel then needs no range masks and no gathers. Phase layout:
    // padded column cp lands in slot (cp % stride) * slots + cp /
    // stride of its row; a tap at kernel column s reads phase s %
    // stride starting at slot s / stride. The trailing 8 floats of
    // slack license the kernel's read-past-tail vectors. The copy is
    // amortized over all k output channels that reuse it.
    const int64_t hp = h + 2 * pad;
    const int64_t wp = width + 2 * pad;
    const int64_t slots = (wp + stride - 1) / stride;
    const int64_t wpp = slots * stride;
    const int64_t plane_sz = hp * wpp;
    ScratchArena::Buffer xprep = ScratchArena::global().acquire(
        static_cast<size_t>(n * c * plane_sz + 8));
    xprep.zero();   // pad rows/columns and the tail slack must read 0
    float *xp = xprep.data();
    ThreadPool::global().parallelFor(
        0, n * c, [&](int64_t pc0, int64_t pc1) {
            for (int64_t pc = pc0; pc < pc1; ++pc) {
                const float *src = px + pc * h * width;
                float *dst = xp + pc * plane_sz;
                for (int64_t hr = 0; hr < h; ++hr) {
                    const float *srow = src + hr * width;
                    float *drow = dst + (hr + pad) * wpp;
                    if (stride == 1) {
                        std::memcpy(drow + pad, srow,
                                    static_cast<size_t>(width) *
                                        sizeof(float));
                        continue;
                    }
                    // Phase-major so the per-element divisions hoist
                    // out of the inner loop: padded column slot *
                    // stride + ph holds source column slot * stride +
                    // ph - pad.
                    for (int64_t ph = 0; ph < stride; ++ph) {
                        float *dph = drow + ph * slots;
                        int64_t slot =
                            ph >= pad
                                ? 0
                                : (pad - ph + stride - 1) / stride;
                        const int64_t last =
                            (pad + width - 1 - ph) / stride;
                        const float *s =
                            srow + slot * stride + ph - pad;
                        for (; slot <= last; ++slot, s += stride)
                            dph[slot] = *s;
                    }
                }
            }
        });

    // Block-major traversal, partitioned over output channels: each
    // task owns the y[:, ok, :, :] planes of its ok range, so threads
    // accumulate into private output slices in a fixed order and the
    // result is deterministic. Zero blocks and zero weights are
    // skipped exactly as the PEs skip them — the pack holds mask-live
    // taps only. Per ok the input-channel sweep is flattened into one
    // homogeneous tap stream (channel plane, kernel row, and phase
    // slot folded into xoff; weight value copied in), split into
    // L1-sized input-channel chunks so the output-stationary kernel
    // re-reads hot x rows from cache; chunks accumulate into y in
    // fixed ic order, which keeps the per-element addition sequence
    // identical at every thread count and SIMD level. The executed-MAC
    // tally is per-tap arithmetic (clipped extents x batch), not an
    // inner-loop counter, so it costs nothing — padding adds exact
    // zeros the PEs would skip, and the tally does not count them.
    // Mirror the AVX2 strip height (4 rows on narrow planes, 2 wide)
    // so the chunk's per-plane footprint estimate matches what one
    // strip visit actually touches.
    const int64_t strip_rows = q_ext <= 16 ? 4 : 2;
    const int64_t strip_bytes =
        (r_ext + stride * (strip_rows - 1)) * 40 * 4;
    const int64_t ic_chunk =
        std::max<int64_t>(1, 24576 / std::max<int64_t>(1, strip_bytes));
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, k, [&](int64_t ok0, int64_t ok1) {
        int64_t local_macs = 0;
        std::vector<kernels::ConvRunTap> run;
        std::vector<int64_t> chunk;
        for (int64_t ok = ok0; ok < ok1; ++ok) {
            run.clear();
            chunk.clear();
            for (int64_t ic = 0; ic < c; ++ic) {
                if (ic % ic_chunk == 0)
                    chunk.push_back(static_cast<int64_t>(run.size()));
                const int64_t b = ok * c + ic;
                const int64_t t0 = pack->blockOff[static_cast<size_t>(b)];
                const int64_t ntaps =
                    pack->blockOff[static_cast<size_t>(b) + 1] - t0;
                if (ntaps == 0)
                    continue;   // density known from pointer subtraction
                const kernels::ConvTap *taps = all_taps + t0;
                const float *bvals = wvals + w.blockValueOffset(b);
                const int64_t plane = ic * plane_sz;
                for (int64_t t = 0; t < ntaps; ++t) {
                    const kernels::ConvTap &tp = taps[t];
                    if (tp.nq <= 0 || tp.pHi <= tp.pLo)
                        continue;   // fully clipped: contributes nothing
                    local_macs += static_cast<int64_t>(tp.pHi - tp.pLo) *
                                  tp.nq * n;
                    const int64_t r = tp.elem / s_ext;
                    const int64_t s = tp.elem % s_ext;
                    kernels::ConvRunTap rt;
                    rt.xoff = plane + r * wpp + (s % stride) * slots +
                              s / stride;
                    rt.w = bvals[t];
                    run.push_back(rt);
                }
            }
            if (run.empty())
                continue;   // y planes stay zero
            chunk.push_back(static_cast<int64_t>(run.size()));
            for (size_t ci = 0; ci + 1 < chunk.size(); ++ci) {
                const int64_t cs = chunk[ci];
                const int64_t ce = chunk[ci + 1];
                if (ce == cs)
                    continue;
                for (int64_t in = 0; in < n; ++in) {
                    kernels::sparseConvFwdPlaneRun(
                        run.data() + cs, ce - cs,
                        xp + in * c * plane_sz,
                        py + (in * k + ok) * p_ext * q_ext,
                        stride * wpp, p_ext, q_ext);
                }
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
    return y;
}

Tensor
sparseConvBackwardData(const Tensor &dy, const CsbTensor &w,
                       const Shape &x_shape, int64_t stride,
                       int64_t pad, int64_t *macs,
                       const kernels::ConvTapPack *pack)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    PROCRUSTES_ASSERT(x_shape.rank() == 4 && x_shape[1] == ws[1],
                      "x shape mismatch");
    const int64_t n = x_shape[0];
    const int64_t c = ws[1];
    const int64_t h = x_shape[2];
    const int64_t width = x_shape[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    Tensor dx(x_shape);
    const float *pdy = dy.data();
    float *pdx = dx.data();

    kernels::ConvTapPack local_pack;
    pack = resolvePack(pack, w, h, width, stride, pad, &local_pack);
    const kernels::ConvTap *all_taps = pack->taps.data();
    const float *wvals = w.valuesData();

    // The backward pass consumes the same packed blocks through the
    // 180-degree-rotated view (Figure 2b). Partitioning over input
    // channels makes each task's dx[:, ic, :, :] planes private, so
    // the scatter-accumulation needs no locks and stays deterministic.
    // Zero dy operands are skipped (activation sparsity propagated by
    // the ReLU / max-pool backward); the executed-MAC tally is a sum
    // of per-chunk integers, so it is thread-count invariant too.
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, c, [&](int64_t ic0, int64_t ic1) {
        int64_t local_macs = 0;
        for (int64_t ic = ic0; ic < ic1; ++ic) {
            for (int64_t ok = 0; ok < k; ++ok) {
                const int64_t b = ok * c + ic;
                const int64_t t0 = pack->blockOff[static_cast<size_t>(b)];
                const int64_t ntaps =
                    pack->blockOff[static_cast<size_t>(b) + 1] - t0;
                if (ntaps == 0)
                    continue;
                const kernels::ConvTap *taps = all_taps + t0;
                const float *bvals = wvals + w.blockValueOffset(b);
                for (int64_t in = 0; in < n; ++in) {
                    const float *dyplane =
                        pdy + (in * k + ok) * p_ext * q_ext;
                    float *dxplane =
                        pdx + (in * c + ic) * h * width;
                    local_macs += kernels::sparseConvBwdDataPlane(
                        taps, ntaps, bvals, dyplane, dxplane, width,
                        stride, q_ext);
                }
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
    return dx;
}

void
sparseConvBackwardWeights(const Tensor &x, const Tensor &dy,
                          const CsbTensor &w, int64_t stride,
                          int64_t pad, Tensor *dw, int64_t *macs,
                          const kernels::ConvTapPack *pack)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    PROCRUSTES_ASSERT(dw && dw->shape() == ws,
                      "dw shape mismatch in sparse conv backward");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    const float *px = x.data();
    const float *pdy = dy.data();
    float *pdw = dw->data();

    kernels::ConvTapPack local_pack;
    pack = resolvePack(pack, w, h, width, stride, pad, &local_pack);
    const kernels::ConvTap *all_taps = pack->taps.data();

    // The weight-update pass walks the same blocks as the other two
    // phases, but its output is the weight space itself: partitioning
    // over output channels makes each task's dW[ok, :, :, :] slice
    // private, and every live tap reduces its (n, p, q) space in the
    // fixed 8-lane microkernel schedule — deterministic for any thread
    // count and SIMD level. Pruned taps are never touched, so their dW
    // entries stay exactly as given. Zero activations — the ReLU zeros
    // that make x the sparse operand of this phase — contribute exact
    // zeros and are excluded from the executed-MAC tally.
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, k, [&](int64_t ok0, int64_t ok1) {
        int64_t local_macs = 0;
        for (int64_t ok = ok0; ok < ok1; ++ok) {
            for (int64_t ic = 0; ic < c; ++ic) {
                const int64_t b = ok * c + ic;
                const int64_t t0 = pack->blockOff[static_cast<size_t>(b)];
                const int64_t ntaps =
                    pack->blockOff[static_cast<size_t>(b) + 1] - t0;
                if (ntaps == 0)
                    continue;
                // Conv blocks are contiguous in the dense weight space,
                // so the block's dW slots start at b * blockElems.
                local_macs += kernels::sparseConvBwdWeightBlock(
                    all_taps + t0, ntaps, px + ic * h * width,
                    pdy + ok * p_ext * q_ext, c * h * width,
                    k * p_ext * q_ext, n, width, stride, q_ext,
                    pdw + b * w.blockElems());
            }
        }
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
}

SparseConvMacCounts
sparseConvMacCounts(const Tensor &x, const CsbTensor &w, int64_t stride,
                    int64_t pad)
{
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, ws[2], stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);

    // Exact count: a live weight at tap (r, s) fires only for the
    // output positions whose input projection is in bounds, so clip
    // each tap's (p, q) iteration space against the padding halo —
    // matching what the executors above actually compute. One clipped
    // per-tap extent serves all three phases: forward multiplies,
    // backward-data scatters, and backward-weight reduces over the
    // identical (n, p, q) set.
    int64_t macs = 0;
    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            if (!w.blockMaskBit(b, e))
                continue;
            int64_t p_lo, p_hi, q_lo, q_hi;
            validOutRange(p_ext, h, e / s_ext, stride, pad, &p_lo, &p_hi);
            validOutRange(q_ext, width, e % s_ext, stride, pad, &q_lo,
                       &q_hi);
            macs += (p_hi - p_lo) * (q_hi - q_lo);
        }
    }
    macs *= xs[0];

    SparseConvMacCounts counts;
    counts.forward = macs;
    counts.backwardData = macs;
    counts.backwardWeight = macs;
    return counts;
}

SparseConvMacCounts
sparseConvMacCounts(const Tensor &x, const Tensor &dy, const CsbTensor &w,
                    int64_t stride, int64_t pad)
{
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    SparseConvMacCounts counts;
    const float *px = x.data();
    const float *pdy = dy.data();

    // Replay the executors' tap traversal once: every in-bounds
    // (tap, n, p, q) visit is one forward MAC, and it additionally
    // counts towards backward-data / backward-weight when the operand
    // the executor would multiply there — dy respectively x — is
    // non-zero.
    std::vector<Tap> taps;
    for (int64_t ok = 0; ok < k; ++ok) {
        for (int64_t ic = 0; ic < c; ++ic) {
            const int64_t b = ok * c + ic;
            if (w.blockNnz(b) == 0)
                continue;
            gatherMaskTaps(w, b, s_ext, h, width, p_ext, q_ext, stride,
                           pad, &taps);
            for (const Tap &t : taps) {
                const int64_t iw0 = t.qLo * stride + t.s - pad;
                counts.forward +=
                    (t.pHi - t.pLo) * (t.qHi - t.qLo) * n;
                for (int64_t in = 0; in < n; ++in) {
                    const float *dyplane =
                        pdy + (in * k + ok) * p_ext * q_ext;
                    const float *xplane =
                        px + (in * c + ic) * h * width;
                    for (int64_t p = t.pLo; p < t.pHi; ++p) {
                        const float *dyrow =
                            dyplane + p * q_ext + t.qLo;
                        const float *xrow =
                            xplane +
                            (p * stride + t.r - pad) * width + iw0;
                        const int64_t nq = t.qHi - t.qLo;
                        for (int64_t q = 0; q < nq; ++q) {
                            if (dyrow[q] != 0.0f)
                                ++counts.backwardData;
                            if (xrow[q * stride] != 0.0f)
                                ++counts.backwardWeight;
                        }
                    }
                }
            }
        }
    }
    return counts;
}

int64_t
sparseConvMacs(const Tensor &x, const CsbTensor &w, int64_t stride,
               int64_t pad)
{
    return sparseConvMacCounts(x, w, stride, pad).forward;
}

} // namespace sparse
} // namespace procrustes
