#include "sparse/sparse_conv.h"

#include "common/logging.h"

namespace procrustes {
namespace sparse {

namespace {

/** Validate inputs and derive the output spatial extent. */
int64_t
outExtent(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    const int64_t out = (in + 2 * pad - kernel) / stride + 1;
    PROCRUSTES_ASSERT(out > 0, "convolution output would be empty");
    return out;
}

} // namespace

Tensor
sparseConvForward(const Tensor &x, const CsbTensor &w, int64_t stride,
                  int64_t pad)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4 && xs[1] == ws[1],
                      "input channels mismatch");
    const int64_t n = xs[0];
    const int64_t c = ws[1];
    const int64_t h = xs[2];
    const int64_t width = xs[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);

    Tensor y(Shape{n, k, p_ext, q_ext});
    const float *px = x.data();
    float *py = y.data();

    // Block-major traversal: exactly what the PEs do — fetch one
    // packed kernel, walk its non-zeros, skip everything else.
    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;   // density known from pointer subtraction
        const int64_t ok = b / c;
        const int64_t ic = b % c;
        const auto vals = w.blockDense(b);
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            const float wt = vals[static_cast<size_t>(e)];
            if (wt == 0.0f)
                continue;
            const int64_t r = e / s_ext;
            const int64_t s = e % s_ext;
            for (int64_t in = 0; in < n; ++in) {
                const float *xplane =
                    px + (in * c + ic) * h * width;
                float *yplane =
                    py + (in * k + ok) * p_ext * q_ext;
                for (int64_t p = 0; p < p_ext; ++p) {
                    const int64_t ih = p * stride + r - pad;
                    if (ih < 0 || ih >= h)
                        continue;
                    for (int64_t q = 0; q < q_ext; ++q) {
                        const int64_t iw = q * stride + s - pad;
                        if (iw < 0 || iw >= width)
                            continue;
                        yplane[p * q_ext + q] +=
                            wt * xplane[ih * width + iw];
                    }
                }
            }
        }
    }
    return y;
}

Tensor
sparseConvBackwardData(const Tensor &dy, const CsbTensor &w,
                       const Shape &x_shape, int64_t stride,
                       int64_t pad)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::ConvFilters,
                      "weights must be CSB conv filters");
    const Shape &ws = w.denseShape();
    PROCRUSTES_ASSERT(x_shape.rank() == 4 && x_shape[1] == ws[1],
                      "x shape mismatch");
    const int64_t n = x_shape[0];
    const int64_t c = ws[1];
    const int64_t h = x_shape[2];
    const int64_t width = x_shape[3];
    const int64_t k = ws[0];
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    const int64_t p_ext = outExtent(h, r_ext, stride, pad);
    const int64_t q_ext = outExtent(width, s_ext, stride, pad);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p_ext, q_ext}),
                      "dy shape mismatch");

    Tensor dx(x_shape);
    const float *pdy = dy.data();
    float *pdx = dx.data();

    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;
        const int64_t ok = b / c;
        const int64_t ic = b % c;
        // The backward pass consumes the same packed block through the
        // 180-degree-rotated view (Figure 2b): non-zero at rotated
        // position (r', s') contributes with the flipped offsets.
        const auto vals = w.blockDense(b);
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            const float wt = vals[static_cast<size_t>(e)];
            if (wt == 0.0f)
                continue;
            const int64_t r = e / s_ext;
            const int64_t s = e % s_ext;
            for (int64_t in = 0; in < n; ++in) {
                const float *dyplane =
                    pdy + (in * k + ok) * p_ext * q_ext;
                float *dxplane =
                    pdx + (in * c + ic) * h * width;
                for (int64_t p = 0; p < p_ext; ++p) {
                    const int64_t ih = p * stride + r - pad;
                    if (ih < 0 || ih >= h)
                        continue;
                    for (int64_t q = 0; q < q_ext; ++q) {
                        const int64_t iw = q * stride + s - pad;
                        if (iw < 0 || iw >= width)
                            continue;
                        dxplane[ih * width + iw] +=
                            wt * dyplane[p * q_ext + q];
                    }
                }
            }
        }
    }
    return dx;
}

int64_t
sparseConvMacs(const Tensor &x, const CsbTensor &w, int64_t stride,
               int64_t pad)
{
    const Shape &ws = w.denseShape();
    const Shape &xs = x.shape();
    const int64_t p_ext = outExtent(xs[2], ws[2], stride, pad);
    const int64_t q_ext = outExtent(xs[3], ws[3], stride, pad);
    // Upper bound (interior): every non-zero weight fires once per
    // output position per sample.
    return w.nnz() * xs[0] * p_ext * q_ext;
}

} // namespace sparse
} // namespace procrustes
