/**
 * @file
 * Mask-live gradient gather/scatter and the deterministic
 * allreduce-style fold used by the data-parallel shard engine
 * (src/scaleout/).
 *
 * Sparse training makes gradient exchange cheap: under the CSB
 * executors the weight gradient is masked (dW is exactly zero wherever
 * the weight is a pruned zero), so only the mask-live positions carry
 * information. Because every shard replica holds bitwise-identical
 * weights, both endpoints of an exchange share the same mask and a
 * message needs no indices — just the live values packed in mask
 * order, the same convention CsbTensor uses for its value stream.
 *
 * Determinism contract: floating-point summation is a sequential left
 * fold and is NOT decomposable at arbitrary boundaries, so the shard
 * engine never pre-reduces per shard. Instead each global batch is cut
 * into fixed-size grad slices (a granularity independent of the shard
 * count), every slice contributes one packed partial, and
 * sparseAllreduceGrads() folds the partials in global slice order.
 * The result is bitwise identical for any shard count.
 */

#ifndef PROCRUSTES_SPARSE_GRAD_EXCHANGE_H_
#define PROCRUSTES_SPARSE_GRAD_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace sparse {

/**
 * Flat live mask from a value tensor's zero pattern: 1 where the value
 * is non-zero — the same "live iff value != 0 at encode time" rule the
 * CSB encoders apply. Callers must NOT use this for parameters whose
 * legitimate values can be exactly zero (e.g. zero-initialized
 * biases); exchange those dense instead.
 */
std::vector<uint8_t> liveMaskFromValues(const Tensor &value);

/** Number of live (non-zero) entries in a flat mask. */
int64_t liveCount(const std::vector<uint8_t> &live);

/**
 * Pack src's live positions into dst in mask order. dst must hold
 * liveCount(live) floats. Returns the packed count.
 */
int64_t gatherLive(const float *src, const std::vector<uint8_t> &live,
                   float *dst);

/**
 * Unpack `packed` into dst: live positions receive the packed values
 * in mask order, dead positions are set to exactly zero (a masked
 * gradient is zero by definition). dst must hold live.size() floats.
 */
void scatterLive(const float *packed, const std::vector<uint8_t> &live,
                 float *dst);

/**
 * Deterministic allreduce-style fold of packed mask-live partials:
 * returns sum_i weights[i] * partials[i], folded sequentially in index
 * (global slice) order. All partials must have equal length. With a
 * single partial of weight 1.0f the result is bitwise equal to that
 * partial (0 + 1*x == x in IEEE754), which is what makes a one-shard,
 * one-slice engine step bitwise identical to the plain trainer.
 */
std::vector<float>
sparseAllreduceGrads(const std::vector<std::vector<float>> &partials,
                     const std::vector<float> &weights);

/** Wire traffic of one parameter's exchange in one step. */
struct ExchangeVolume
{
    int64_t compressedBytes = 0;  //!< mask-live packed fp32 payloads
    int64_t denseBytes = 0;       //!< dense twin at equal message count
    int64_t messages = 0;

    ExchangeVolume &
    operator+=(const ExchangeVolume &o)
    {
        compressedBytes += o.compressedBytes;
        denseBytes += o.denseBytes;
        messages += o.messages;
        return *this;
    }
};

/**
 * Traffic of a reduce-to-root + broadcast exchange: `gather_messages`
 * packed partials travel to the root and `broadcast_messages` reduced
 * copies travel back out. A compressed message carries nnz packed fp32
 * values and no indices (both endpoints share the mask); the dense
 * twin moves numel values in the same number of messages.
 */
ExchangeVolume allreduceVolume(int64_t nnz, int64_t numel,
                               int64_t gather_messages,
                               int64_t broadcast_messages);

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_GRAD_EXCHANGE_H_
