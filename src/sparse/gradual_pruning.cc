#include "sparse/gradual_pruning.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace procrustes {
namespace sparse {

GradualMagnitudePruningOptimizer::GradualMagnitudePruningOptimizer(
    const GradualPruningConfig &cfg)
    : cfg_(cfg)
{
    PROCRUSTES_ASSERT(cfg.targetSparsity > 1.0,
                      "target sparsity must exceed 1x");
    PROCRUSTES_ASSERT(cfg.lr > 0.0f, "learning rate must be positive");
    PROCRUSTES_ASSERT(cfg.pruneFraction > 0.0 && cfg.pruneFraction < 1.0,
                      "prune fraction must be in (0,1)");
    PROCRUSTES_ASSERT(cfg.pruneInterval > 0, "prune interval positive");
}

void
GradualMagnitudePruningOptimizer::capture(
    const std::vector<nn::Param *> &params)
{
    masks_.clear();
    prunableCount_ = 0;
    for (nn::Param *p : params) {
        if (p->prunable) {
            masks_.emplace_back(
                static_cast<size_t>(p->value.numel()), 1);
            prunableCount_ += p->value.numel();
        } else {
            masks_.emplace_back();
        }
    }
    aliveCount_ = prunableCount_;
    initialized_ = true;
}

void
GradualMagnitudePruningOptimizer::pruneStep(
    const std::vector<nn::Param *> &params)
{
    const auto floor_alive = static_cast<int64_t>(
        std::ceil(static_cast<double>(prunableCount_) /
                  cfg_.targetSparsity));
    if (aliveCount_ <= floor_alive)
        return;

    // Collect the magnitudes of surviving weights across the model
    // (both baselines sort globally, Section II-E).
    std::vector<float> mags;
    mags.reserve(static_cast<size_t>(aliveCount_));
    for (size_t pi = 0; pi < params.size(); ++pi) {
        if (masks_[pi].empty())
            continue;
        const float *v = params[pi]->value.data();
        for (size_t i = 0; i < masks_[pi].size(); ++i) {
            if (masks_[pi][i])
                mags.push_back(std::fabs(v[i]));
        }
    }

    auto to_remove = static_cast<int64_t>(
        std::llround(cfg_.pruneFraction *
                     static_cast<double>(aliveCount_)));
    to_remove =
        std::min(to_remove, aliveCount_ - floor_alive);
    if (to_remove <= 0)
        return;

    std::nth_element(mags.begin(), mags.begin() + to_remove - 1,
                     mags.end());
    const float threshold = mags[static_cast<size_t>(to_remove - 1)];

    int64_t removed = 0;
    for (size_t pi = 0; pi < params.size() && removed < to_remove;
         ++pi) {
        if (masks_[pi].empty())
            continue;
        float *v = params[pi]->value.data();
        for (size_t i = 0;
             i < masks_[pi].size() && removed < to_remove; ++i) {
            if (masks_[pi][i] && std::fabs(v[i]) <= threshold) {
                masks_[pi][i] = 0;
                v[i] = 0.0f;
                ++removed;
            }
        }
    }
    aliveCount_ -= removed;
    ++pruneEvents_;
}

void
GradualMagnitudePruningOptimizer::step(
    const std::vector<nn::Param *> &params)
{
    if (!initialized_)
        capture(params);
    PROCRUSTES_ASSERT(masks_.size() == params.size(),
                      "parameter set changed between steps");

    for (size_t pi = 0; pi < params.size(); ++pi) {
        nn::Param *p = params[pi];
        float *v = p->value.data();
        const float *g = p->grad.data();
        const int64_t n = p->value.numel();
        if (masks_[pi].empty()) {
            for (int64_t i = 0; i < n; ++i)
                v[i] -= cfg_.lr * g[i];
            continue;
        }
        for (int64_t i = 0; i < n; ++i) {
            if (masks_[pi][static_cast<size_t>(i)])
                v[i] -= cfg_.lr * g[i];
            // Pruned positions stay exactly zero.
        }
    }

    ++iteration_;
    densityIntegral_ += currentDensity();
    if (iteration_ >= cfg_.warmupIterations &&
        (iteration_ - cfg_.warmupIterations) % cfg_.pruneInterval == 0) {
        pruneStep(params);
    }
}

void
GradualMagnitudePruningOptimizer::serializeState(ByteWriter &w) const
{
    Optimizer::serializeState(w);
    w.writeU8(initialized_ ? 1 : 0);
    w.writeI64(prunableCount_);
    w.writeI64(aliveCount_);
    w.writeF64(densityIntegral_);
    w.writeI64(pruneEvents_);
    w.writeU32(static_cast<uint32_t>(masks_.size()));
    for (const std::vector<uint8_t> &m : masks_) {
        w.writeU64(m.size());
        if (!m.empty())
            w.writeBytes(m.data(), m.size());
    }
}

void
GradualMagnitudePruningOptimizer::restoreState(ByteReader &r)
{
    Optimizer::restoreState(r);
    initialized_ = r.readU8() != 0;
    prunableCount_ = r.readI64();
    aliveCount_ = r.readI64();
    densityIntegral_ = r.readF64();
    pruneEvents_ = static_cast<int>(r.readI64());
    const uint32_t count = r.readU32();
    masks_.clear();
    masks_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const uint64_t n = r.readU64();
        std::vector<uint8_t> m(static_cast<size_t>(n));
        if (n)
            r.readBytes(m.data(), m.size());
        masks_.push_back(std::move(m));
    }
}

double
GradualMagnitudePruningOptimizer::currentDensity() const
{
    return prunableCount_
               ? static_cast<double>(aliveCount_) /
                     static_cast<double>(prunableCount_)
               : 1.0;
}

double
GradualMagnitudePruningOptimizer::averageDensity() const
{
    return iteration_ ? densityIntegral_ /
                            static_cast<double>(iteration_)
                      : 1.0;
}

} // namespace sparse
} // namespace procrustes
