#include "sparse/mask.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "sparse/quantile.h"

namespace procrustes {
namespace sparse {

int64_t
SparsityMask::nnz() const
{
    int64_t count = 0;
    for (uint8_t b : bits)
        count += b;
    return count;
}

double
SparsityMask::density() const
{
    const int64_t n = numel();
    return n ? static_cast<double>(nnz()) / static_cast<double>(n) : 0.0;
}

int64_t
SparsityMask::blockNnz(int64_t k, int64_t c) const
{
    PROCRUSTES_ASSERT(k >= 0 && k < K && c >= 0 && c < C,
                      "kernel index out of range");
    const int64_t base = (k * C + c) * R * S;
    int64_t count = 0;
    for (int64_t e = 0; e < R * S; ++e)
        count += bits[static_cast<size_t>(base + e)];
    return count;
}

double
SparsityMask::blockDensity(int64_t k, int64_t c) const
{
    return static_cast<double>(blockNnz(k, c)) /
           static_cast<double>(R * S);
}

int64_t
SparsityMask::tileNnz(int64_t k0, int64_t k1, int64_t c0, int64_t c1) const
{
    PROCRUSTES_ASSERT(k0 >= 0 && k1 <= K && c0 >= 0 && c1 <= C &&
                          k0 <= k1 && c0 <= c1,
                      "tile bounds out of range");
    int64_t count = 0;
    for (int64_t k = k0; k < k1; ++k) {
        for (int64_t c = c0; c < c1; ++c)
            count += blockNnz(k, c);
    }
    return count;
}

SparsityMask
SparsityMask::fromTensor(const Tensor &w)
{
    const Shape &s = w.shape();
    SparsityMask m;
    if (s.rank() == 4) {
        m.K = s[0];
        m.C = s[1];
        m.R = s[2];
        m.S = s[3];
    } else if (s.rank() == 2) {
        m.K = s[0];
        m.C = s[1];
        m.R = 1;
        m.S = 1;
    } else {
        PANIC("mask source must be rank 2 or 4");
    }
    m.bits.resize(static_cast<size_t>(m.numel()));
    const float *pw = w.data();
    for (int64_t i = 0; i < m.numel(); ++i)
        m.bits[static_cast<size_t>(i)] = pw[i] != 0.0f ? 1 : 0;
    return m;
}

SparsityMask
SparsityMask::dense(int64_t k, int64_t c, int64_t r, int64_t s)
{
    SparsityMask m;
    m.K = k;
    m.C = c;
    m.R = r;
    m.S = s;
    m.bits.assign(static_cast<size_t>(m.numel()), 1);
    return m;
}

namespace {

/**
 * Synthetic per-weight magnitudes: |N(0,1)| scaled by lognormal
 * factors at per-K-channel, per-C-channel, and per-kernel
 * granularity. Models the structure of accumulated gradients after
 * training pressure has concentrated learning in some channels and
 * kernels ("by chance and learning pressure", Section II-C).
 */
std::vector<float>
syntheticMagnitudes(int64_t k, int64_t c, int64_t r, int64_t s,
                    const SyntheticMaskConfig &cfg)
{
    Xorshift128Plus rng(cfg.seed);
    const int64_t kernel_elems = r * s;
    std::vector<double> k_scale(static_cast<size_t>(k));
    for (auto &v : k_scale)
        v = std::exp(cfg.rowSigma * rng.nextGaussian());
    std::vector<double> c_scale(static_cast<size_t>(c));
    for (auto &v : c_scale)
        v = std::exp(cfg.colSigma * rng.nextGaussian());

    std::vector<float> mags(static_cast<size_t>(k * c * kernel_elems));
    for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t cc = 0; cc < c; ++cc) {
            const double scale =
                k_scale[static_cast<size_t>(kk)] *
                c_scale[static_cast<size_t>(cc)] *
                std::exp(cfg.kernelSigma * rng.nextGaussian());
            float *block =
                mags.data() + (kk * c + cc) * kernel_elems;
            for (int64_t e = 0; e < kernel_elems; ++e) {
                block[e] = static_cast<float>(
                    scale * std::fabs(rng.nextGaussian()));
            }
        }
    }
    return mags;
}

} // namespace

SparsityMask
makeSyntheticMask(int64_t k, int64_t c, int64_t r, int64_t s,
                  const SyntheticMaskConfig &cfg)
{
    PROCRUSTES_ASSERT(cfg.targetDensity > 0.0 && cfg.targetDensity <= 1.0,
                      "density must be in (0, 1]");
    auto mags = syntheticMagnitudes(k, c, r, s, cfg);
    const int64_t total = static_cast<int64_t>(mags.size());
    const auto keep = static_cast<int64_t>(
        std::llround(cfg.targetDensity * static_cast<double>(total)));

    SparsityMask m;
    m.K = k;
    m.C = c;
    m.R = r;
    m.S = s;
    m.bits.assign(static_cast<size_t>(total), 0);
    if (keep >= total) {
        std::fill(m.bits.begin(), m.bits.end(), 1);
        return m;
    }
    if (keep <= 0)
        return m;

    std::vector<float> sorted = mags;
    const int64_t nth = total - keep;
    std::nth_element(sorted.begin(), sorted.begin() + nth, sorted.end());
    const float threshold = sorted[static_cast<size_t>(nth)];
    int64_t placed = 0;
    for (int64_t i = 0; i < total && placed < keep; ++i) {
        if (mags[static_cast<size_t>(i)] >= threshold) {
            m.bits[static_cast<size_t>(i)] = 1;
            ++placed;
        }
    }
    return m;
}

SparsityMask
maskFromQuantileStream(int64_t k, int64_t c, int64_t r, int64_t s,
                       double sparsity, double kernel_sigma,
                       uint64_t seed)
{
    PROCRUSTES_ASSERT(sparsity > 1.0, "sparsity factor must exceed 1x");
    SyntheticMaskConfig mcfg;
    mcfg.kernelSigma = kernel_sigma;
    mcfg.seed = seed;
    auto mags = syntheticMagnitudes(k, c, r, s, mcfg);

    // Warm-up passes converge the estimate from its tiny initial
    // value; the hardware QE unit sees the gradient stream once per
    // training iteration and converges across iterations the same
    // way. Stop when the estimate stabilizes (or after a bound).
    ParallelQuantileEstimator qe(1.0 - 1.0 / sparsity, /*width=*/4);
    for (int pass = 0; pass < 4096; ++pass) {
        const double before = qe.estimate();
        for (float v : mags)
            qe.update(v);
        qe.flush();
        const double after = qe.estimate();
        if (pass >= 2 &&
            std::fabs(after - before) < 0.02 * std::fabs(after))
            break;
    }

    SparsityMask m;
    m.K = k;
    m.C = c;
    m.R = r;
    m.S = s;
    m.bits.assign(mags.size(), 0);
    for (size_t i = 0; i < mags.size(); ++i) {
        const bool tracked = mags[i] > qe.estimate();
        qe.update(mags[i]);
        m.bits[i] = tracked ? 1 : 0;
    }
    return m;
}

} // namespace sparse
} // namespace procrustes
