#include "sparse/grad_exchange.h"

#include "common/logging.h"

namespace procrustes {
namespace sparse {

std::vector<uint8_t>
liveMaskFromValues(const Tensor &value)
{
    const float *v = value.data();
    const int64_t n = value.numel();
    std::vector<uint8_t> live(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        live[static_cast<size_t>(i)] = v[i] != 0.0f ? 1 : 0;
    return live;
}

int64_t
liveCount(const std::vector<uint8_t> &live)
{
    int64_t nnz = 0;
    for (uint8_t b : live)
        nnz += b;
    return nnz;
}

int64_t
gatherLive(const float *src, const std::vector<uint8_t> &live,
           float *dst)
{
    int64_t out = 0;
    for (size_t i = 0; i < live.size(); ++i) {
        if (live[i])
            dst[out++] = src[i];
    }
    return out;
}

void
scatterLive(const float *packed, const std::vector<uint8_t> &live,
            float *dst)
{
    int64_t in = 0;
    for (size_t i = 0; i < live.size(); ++i)
        dst[i] = live[i] ? packed[in++] : 0.0f;
}

std::vector<float>
sparseAllreduceGrads(const std::vector<std::vector<float>> &partials,
                     const std::vector<float> &weights)
{
    PROCRUSTES_ASSERT(partials.size() == weights.size(),
                      "one weight per partial");
    PROCRUSTES_ASSERT(!partials.empty(), "nothing to reduce");
    const size_t n = partials[0].size();
    std::vector<float> acc(n, 0.0f);
    for (size_t s = 0; s < partials.size(); ++s) {
        PROCRUSTES_ASSERT(partials[s].size() == n,
                          "partial length mismatch");
        const float w = weights[s];
        const float *x = partials[s].data();
        for (size_t i = 0; i < n; ++i)
            acc[i] += w * x[i];
    }
    return acc;
}

ExchangeVolume
allreduceVolume(int64_t nnz, int64_t numel, int64_t gather_messages,
                int64_t broadcast_messages)
{
    PROCRUSTES_ASSERT(nnz >= 0 && nnz <= numel,
                      "nnz out of range");
    PROCRUSTES_ASSERT(gather_messages >= 0 && broadcast_messages >= 0,
                      "negative message count");
    ExchangeVolume v;
    v.messages = gather_messages + broadcast_messages;
    v.compressedBytes = v.messages * nnz * 4;
    v.denseBytes = v.messages * numel * 4;
    return v;
}

} // namespace sparse
} // namespace procrustes
