/**
 * @file
 * Streaming quantile estimation (DUMIQUE) and its parallelized variant.
 *
 * Procrustes' key algorithmic move (Section III-B of the paper) is
 * replacing the global sort over all accumulated gradients — O(n log n)
 * comparisons over tens of millions of values — with a multiplicative
 * incremental quantile estimator (Yazidi & Hammer, IEEE Trans.
 * Cybernetics 2017). Every gradient magnitude updates a single running
 * threshold estimate; weights whose candidate accumulated gradient
 * exceeds the estimate are tracked, the rest are dropped back.
 *
 * The hardware QE unit processes up to four updates per cycle by
 * treating the average of four incoming values as a single update
 * (Algorithm 4 caption); ParallelQuantileEstimator models that.
 */

#ifndef PROCRUSTES_SPARSE_QUANTILE_H_
#define PROCRUSTES_SPARSE_QUANTILE_H_

#include <cstdint>

#include "common/logging.h"

namespace procrustes {
namespace sparse {

/**
 * DUMIQUE: deterministic update-based multiplicative incremental
 * quantile estimator for a stream of positive values.
 *
 * Update rule (Algorithm 4):
 *   if estimate < x:  estimate *= (1 + rho * q)
 *   else:             estimate *= (1 - rho * (1 - q))
 *
 * The estimate converges (in distribution) to the q-th quantile of the
 * input stream. The paper found accuracy insensitive to the initial
 * estimate and rho, and fixes them at 1e-6 and 1e-3 for all
 * experiments; those are the defaults here.
 */
class QuantileEstimator
{
  public:
    /**
     * @param q target quantile in (0, 1); e.g. 0.9 tracks the top 10%.
     * @param rho adjustment rate (paper: 1e-3).
     * @param initial_estimate starting estimate (paper: 1e-6).
     */
    explicit QuantileEstimator(double q, double rho = 1e-3,
                               double initial_estimate = 1e-6);

    /** Fold one observation into the estimate. x must be >= 0. */
    void
    update(double x)
    {
        if (estimate_ < x)
            estimate_ *= upFactor_;
        else
            estimate_ *= downFactor_;
        ++updates_;
    }

    /** Current estimate of the q-th quantile. */
    double estimate() const { return estimate_; }

    /** Target quantile. */
    double q() const { return q_; }

    /** Number of update() calls folded so far. */
    uint64_t updates() const { return updates_; }

  private:
    double q_;
    double estimate_;
    double upFactor_;
    double downFactor_;
    uint64_t updates_ = 0;
};

/**
 * Hardware-style wide quantile estimator: buffers `width` incoming
 * values and feeds their *average* to the underlying DUMIQUE estimator
 * as one update, sustaining `width` gradient arrivals per cycle (the
 * paper uses width 4 to cover the peak rate of the last VGG-S conv
 * layer).
 */
class ParallelQuantileEstimator
{
  public:
    /** Construct with target quantile q and lane count `width`. */
    ParallelQuantileEstimator(double q, int width = 4, double rho = 1e-3,
                              double initial_estimate = 1e-6);

    /** Enqueue one observation; flushes every `width` observations. */
    void update(double x);

    /** Flush a partially filled buffer (end of a tensor stream). */
    void flush();

    /** Current estimate. */
    double estimate() const { return base_.estimate(); }

    /** Underlying scalar estimator (for tests). */
    const QuantileEstimator &base() const { return base_; }

  private:
    QuantileEstimator base_;
    int width_;
    int pending_ = 0;
    double pendingSum_ = 0.0;
};

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_QUANTILE_H_
