/**
 * @file
 * Gradual magnitude-based pruning baselines (Section II-E / VII-B).
 *
 * The sparse-training alternatives the paper positions Procrustes
 * against prune slowly during training: the lottery-ticket procedure
 * removes the lowest-magnitude 20% of surviving weights every pruning
 * interval, and Eager Pruning removes a sub-1% sliver every interval.
 * Both imply (i) no peak-memory reduction, (ii) mediocre energy
 * savings because average density stays high for most of training,
 * and (iii) a mid-training storage-format switch — the Section I
 * arguments this implementation lets the benches quantify.
 */

#ifndef PROCRUSTES_SPARSE_GRADUAL_PRUNING_H_
#define PROCRUSTES_SPARSE_GRADUAL_PRUNING_H_

#include <cstdint>
#include <vector>

#include "nn/sgd.h"

namespace procrustes {
namespace sparse {

/** Configuration for gradual magnitude pruning. */
struct GradualPruningConfig
{
    /** Final compression factor (stop pruning at 1/target density). */
    double targetSparsity = 5.0;

    /** SGD learning rate. */
    float lr = 0.05f;

    /** Iterations between pruning events. */
    int64_t pruneInterval = 50;

    /**
     * Fraction of *surviving* weights removed per event: 0.2 for the
     * lottery-ticket schedule, ~0.008 for Eager Pruning.
     */
    double pruneFraction = 0.2;

    /** Iterations before the first pruning event (warm-up). */
    int64_t warmupIterations = 50;
};

/**
 * SGD with magnitude-based gradual pruning.
 *
 * Pruned positions are sticky (mask monotonically tightens) and their
 * values are exact zeros, as in the accelerator-facing formulation.
 * averageDensity() integrates density over all steps taken — the
 * quantity that bounds the energy savings of a sparsity-exploiting
 * accelerator over the whole training run.
 */
class GradualMagnitudePruningOptimizer : public nn::Optimizer
{
  public:
    explicit GradualMagnitudePruningOptimizer(
        const GradualPruningConfig &cfg);

    void step(const std::vector<nn::Param *> &params) override;

    /**
     * Checkpoint contract. The masks MUST travel with the weights:
     * step() lazily re-captures masks on a fresh optimizer, marking
     * every position alive, so restoring pruned weights into an
     * unserialized optimizer would let dense-backend gradients
     * re-animate pruned positions and the resumed trajectory would
     * diverge from the uninterrupted run.
     */
    const char *stateKind() const override
    {
        return "gradual_magnitude_pruning";
    }
    bool checkpointComplete() const override { return true; }
    void serializeState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

    /** Current non-zero fraction of prunable weights. */
    double currentDensity() const;

    /** Density integrated over all steps so far (starts at 1.0). */
    double averageDensity() const;

    /** Number of pruning events executed. */
    int pruneEvents() const { return pruneEvents_; }

    const GradualPruningConfig &config() const { return cfg_; }

  private:
    void capture(const std::vector<nn::Param *> &params);
    void pruneStep(const std::vector<nn::Param *> &params);

    GradualPruningConfig cfg_;
    std::vector<std::vector<uint8_t>> masks_;   //!< 1 = alive
    int64_t prunableCount_ = 0;
    int64_t aliveCount_ = 0;
    double densityIntegral_ = 0.0;
    int pruneEvents_ = 0;
    bool initialized_ = false;
};

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_GRADUAL_PRUNING_H_
