/**
 * @file
 * Weight-sparsity masks and generators.
 *
 * The paper extracts masks from PyTorch training runs of the adapted
 * Dropback algorithm and feeds their per-work-tile densities into the
 * extended Timeloop model. This repo obtains masks two ways:
 *
 *   - from actually-trained models (small networks, via
 *     SparsityMask::fromTensor); and
 *   - for full-size network geometries, by streaming synthetic
 *     accumulated-gradient magnitudes — with per-kernel lognormal
 *     scale variation reproducing the "uneven by chance and learning
 *     pressure" structure — through either an exact threshold or the
 *     real quantile-estimation machinery (maskFromQuantileStream).
 */

#ifndef PROCRUSTES_SPARSE_MASK_H_
#define PROCRUSTES_SPARSE_MASK_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace sparse {

/**
 * A boolean non-zero mask over a weight tensor laid out as
 * [K, C, R, S] (fc layers use K = out, C = in, R = S = 1).
 */
struct SparsityMask
{
    int64_t K = 0;
    int64_t C = 0;
    int64_t R = 1;
    int64_t S = 1;
    std::vector<uint8_t> bits;   //!< size K*C*R*S; 1 = non-zero

    int64_t numel() const { return K * C * R * S; }

    /** Count of non-zero positions. */
    int64_t nnz() const;

    /** Non-zero fraction. */
    double density() const;

    /** Non-zero count in kernel (k, c). */
    int64_t blockNnz(int64_t k, int64_t c) const;

    /** Non-zero fraction of kernel (k, c). */
    double blockDensity(int64_t k, int64_t c) const;

    /**
     * Non-zeros in a contiguous span of the K dimension restricted to
     * a span of the C dimension — the work-tile granularity used by
     * the load-balancing and imbalance analyses.
     */
    int64_t tileNnz(int64_t k0, int64_t k1, int64_t c0, int64_t c1) const;

    /** Build a mask from a dense tensor's zero pattern. */
    static SparsityMask fromTensor(const Tensor &w);

    /** Fully dense mask of the given geometry. */
    static SparsityMask dense(int64_t k, int64_t c, int64_t r, int64_t s);
};

/** Synthetic mask generation parameters. */
struct SyntheticMaskConfig
{
    double targetDensity = 0.2;   //!< global non-zero fraction

    /**
     * Lognormal sigma of the independent per-kernel scale. Learning
     * pressure concentrates surviving weights unevenly across kernels.
     */
    double kernelSigma = 0.3;

    /**
     * Lognormal sigma of the per-output-channel (K) scale. Dropback
     * prunes whole output channels preferentially, which is what makes
     * K-slices imbalanced and load balancing worthwhile (Figure 13's
     * residual overheads come from this correlated structure).
     */
    double rowSigma = 0.10;

    /** Lognormal sigma of the per-input-channel (C) scale. */
    double colSigma = 0.08;

    uint64_t seed = 1;
};

/**
 * Generate a mask with exact global density and lognormal
 * non-uniformity at three granularities (per-K-channel, per-C-channel,
 * per-kernel): element magnitudes are scale(k) * scale(c) *
 * scale(k, c) * |N(0,1)| and the top targetDensity fraction survives
 * an exact global threshold.
 */
SparsityMask makeSyntheticMask(int64_t k, int64_t c, int64_t r, int64_t s,
                               const SyntheticMaskConfig &cfg);

/**
 * Generate a mask by streaming the same synthetic magnitudes through
 * the *real* ParallelQuantileEstimator (warm-up pass then a selection
 * pass), mirroring how the hardware QE unit would partition the
 * weights; global density approximates 1/sparsity with the estimation
 * lag the paper reports.
 */
SparsityMask maskFromQuantileStream(int64_t k, int64_t c, int64_t r,
                                    int64_t s, double sparsity,
                                    double kernel_sigma, uint64_t seed);

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_MASK_H_
