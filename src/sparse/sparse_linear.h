/**
 * @file
 * Sparse fully-connected executors operating directly on CSB weights.
 *
 * The fc layers of Section II-A read the same weight matrix in two
 * orders: W in the forward pass (y = x W^T) and W^T in the backward
 * pass (dx = dy W). The CSB format (Section IV-B) serves both because
 * its square blocks are coordinate-addressable: the backward pass
 * traverses the *same* packed blocks transposed while fetching — no
 * second encode, no materialized W^T. These functions are the
 * functional-model equivalent of the accelerator's fc datapath:
 * traversal touches only non-zero weights, the weight-gradient pass
 * accumulates only into mask-live positions, and zero operands (ReLU
 * activation zeros in the weight-update phase, gradient zeros in the
 * backward-data phase) issue no MAC, exactly like the conv executors
 * in sparse_conv.h.
 *
 * All three executors are batch-parallel over the shared ThreadPool.
 * Forward and backward-data give each task a private range of output
 * rows, iterated in fixed tap order; backward-weights computes
 * per-sample partial gradients into ScratchArena workspaces and
 * reduces them in sample order — so every result is bitwise identical
 * for any thread count (enforced by tests/test_sparse_linear.cc).
 *
 * The inner loops dispatch to the SIMD microkernels of
 * kernels/sparse_microkernels.h: forward and backward-data process the
 * batch in transposed 8-sample tiles under AVX2 (scalar-tail samples
 * run the untiled reference loops, which are bitwise identical), and
 * the weight-update fill/reduce vectorize across taps. Tap views carry
 * a permutation back into the CSB value stream, so a caller whose mask
 * is unchanged since the last gather can refresh values in O(nnz)
 * (refreshFcTapValues) instead of re-walking the blocks.
 */

#ifndef PROCRUSTES_SPARSE_SPARSE_LINEAR_H_
#define PROCRUSTES_SPARSE_SPARSE_LINEAR_H_

#include <cstdint>
#include <vector>

#include "sparse/csb.h"
#include "tensor/tensor.h"

namespace procrustes {
namespace sparse {

/**
 * One traversal view of a CSB matrix: the non-zero weights grouped
 * per dense row (the forward / weight-update order) or per dense
 * column (the block-transposed backward order), each group in
 * ascending order of the other coordinate.
 */
struct FcTaps
{
    std::vector<int64_t> offsets;   //!< group start offsets, size G+1
    std::vector<int64_t> index;     //!< the other coordinate, per tap
    std::vector<float> value;       //!< weight value, per tap
    std::vector<int64_t> perm;      //!< source index in the CSB value
                                    //!< stream, per tap (for refresh)
};

/**
 * Precomputed weight-update geometry derived from the row view: the
 * live row per tap, and — when every index fits — 32-bit copies of the
 * tap coordinates so the AVX2 fill/reduce kernels can gather with
 * them. The 32-bit arrays are left empty when O * I would overflow
 * int32; the executors then run the 64-bit scalar path.
 */
struct FcWuAux
{
    std::vector<int64_t> liveRow;   //!< dense row o, per tap
    std::vector<int32_t> index32;   //!< column i, per tap (may be empty)
    std::vector<int32_t> row32;     //!< row o, per tap (may be empty)
    std::vector<int32_t> di32;      //!< dense o*I + i, per tap (")
};

/** Build the weight-update geometry for a row-grouped tap view. */
FcWuAux buildFcWuAux(const FcTaps &rows, int64_t o_ext, int64_t i_ext);

/**
 * Both traversal views of one CSB matrix, gathered in a single walk
 * over the packed blocks, plus the weight-update geometry. The
 * executors below accept a pre-gathered view set so a caller that runs
 * all three training phases on one encode (nn::Linear under kSparse)
 * pays the O(O*I) block walk once per step instead of once per phase;
 * results are identical either way.
 */
struct FcTapViews
{
    FcTaps rows;   //!< per-output-row taps (forward, weight-update)
    FcTaps cols;   //!< per-input-column taps (backward-data)
    FcWuAux wu;    //!< weight-update geometry of the row view
};

/** Gather both views of `w` in one block walk. */
FcTapViews gatherFcTapViews(const CsbTensor &w);

/**
 * Overwrite the tap values of both views from w's packed value stream
 * via the stored permutation. Only valid when w has the same mask the
 * views were gathered from (CsbTensor::sameMaskAs) — the geometry
 * (offsets, index, perm, wu) is untouched. This is the O(nnz) path a
 * layer takes across optimizer steps while its mask epoch is stable.
 */
void refreshFcTapValues(const CsbTensor &w, FcTapViews *views);

/**
 * Forward fc pass y = x W^T from CSB-encoded weights.
 *
 * @param x input activations [N, I].
 * @param w CSB-encoded weight matrix whose dense space is [O, I]
 *        (CsbTensor::Kind::Matrix).
 * @param macs optional out: MACs executed. The forward executor skips
 *        zero *weights* only (like sparseConvForward), so this is
 *        nnz(w) * N.
 * @param views optional pre-gathered tap views of `w` (must describe
 *        exactly this encode); nullptr gathers locally.
 * @return output activations [N, O] (no bias; callers add it).
 */
Tensor sparseLinearForward(const Tensor &x, const CsbTensor &w,
                           int64_t *macs = nullptr,
                           const FcTapViews *views = nullptr);

/**
 * Backward-data fc pass dx = dy W from the same CSB blocks, traversed
 * block-transposed while fetching (the fc analogue of the Figure 2b
 * rotated conv view): the column-indexed tap walk reads each square
 * block through its transpose, so no W^T is ever re-encoded.
 *
 * Zero entries of dy are skipped — after a ReLU (or softmax with
 * sparse targets) backward the incoming gradient carries activation
 * sparsity, and a PE issues no MAC for a zero operand. Skipping a
 * zero term leaves the sums bit-identical, so this executor stays the
 * exact adjoint of sparseLinearForward.
 *
 * @param dy output-side gradient [N, O].
 * @param w CSB-encoded weight matrix [O, I].
 * @param macs optional out: MACs actually executed (live weights x
 *        non-zero dy operands).
 * @param views optional pre-gathered tap views of `w`.
 * @return input-side gradient [N, I].
 */
Tensor sparseLinearBackwardData(const Tensor &dy, const CsbTensor &w,
                                int64_t *macs = nullptr,
                                const FcTapViews *views = nullptr);

/**
 * Weight-gradient fc pass restricted to the CSB mask:
 * dW[o, i] += sum_n dy[n, o] * x[n, i] for every position the mask
 * marks live. Pruned positions accumulate nothing — their MACs are
 * skipped exactly as the PEs skip zero weights, which keeps pruned fc
 * weights frozen during sparse training.
 *
 * Zero input activations are skipped: ReLU zeros make x the sparse
 * operand of the weight-update phase (Section II-B), and their
 * product terms are exact zeros, so the accumulated dW is
 * bit-identical while the executed MACs — reported through `macs` —
 * shrink with the measured activation density.
 *
 * @param x forward input activations [N, I].
 * @param dy output-side gradient [N, O].
 * @param w CSB-encoded weight matrix [O, I] (supplies the mask).
 * @param dw dense weight gradient [O, I]; ACCUMULATED into at live
 *        positions only, untouched elsewhere.
 * @param macs optional out: MACs actually executed (mask-live
 *        positions x non-zero activation operands).
 * @param views optional pre-gathered tap views of `w`.
 */
void sparseLinearBackwardWeights(const Tensor &x, const Tensor &dy,
                                 const CsbTensor &w, Tensor *dw,
                                 int64_t *macs = nullptr,
                                 const FcTapViews *views = nullptr);

/**
 * Exact MAC counts of the three fc training phases. Mirrors
 * SparseConvMacCounts so cost-model consumers can attribute counts
 * per phase.
 */
struct SparseLinearMacCounts
{
    int64_t forward = 0;
    int64_t backwardData = 0;
    int64_t backwardWeight = 0;

    /** Whole-iteration MACs (all three phases). */
    int64_t total() const { return forward + backwardData + backwardWeight; }
};

/**
 * Weight-only MAC bound for this input: every live weight fires once
 * per sample in each phase, so all three counts equal nnz(w) * N.
 * This is what the executors would do if neither dy nor x carried a
 * single zero.
 *
 * @param x forward input activations [N, I] (supplies the batch).
 */
SparseLinearMacCounts sparseLinearMacCounts(const Tensor &x,
                                            const CsbTensor &w);

/**
 * Measured MAC counts honouring weight mask AND operand zeros —
 * exactly what the zero-skipping executors execute on this input:
 *
 *   forward:          live weights x samples (weights skipped only);
 *   backward-data:    live weights x samples whose dy operand is
 *                     non-zero (the dy-skip);
 *   backward-weight:  mask-live positions x samples whose input
 *                     activation operand is non-zero (the x-skip).
 *
 * These are the per-step numbers Linear's LayerStepReport feeds into
 * the workload-trace pipeline.
 *
 * @param x forward input activations [N, I] (real values).
 * @param dy output-side gradient [N, O] (real values).
 */
SparseLinearMacCounts sparseLinearMacCounts(const Tensor &x,
                                            const Tensor &dy,
                                            const CsbTensor &w);

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_SPARSE_LINEAR_H_
