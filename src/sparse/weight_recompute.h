/**
 * @file
 * Weight-Recompute (WR) unit model.
 *
 * Each Procrustes PE contains a WR unit that regenerates initial weight
 * values on demand instead of storing them (Section V): three xorshift
 * PRNGs are seeded from the weight index, their outputs are summed to
 * approximate a Gaussian, scaled by an integer factor implementing the
 * layer's initialization formula (Xavier / Kaiming) and the
 * initial-weight decay lambda^t of Algorithm 3, and finally converted
 * to FP32. The unit is stateless: outputs are a pure function of
 * (seed, weight index, scale).
 */

#ifndef PROCRUSTES_SPARSE_WEIGHT_RECOMPUTE_H_
#define PROCRUSTES_SPARSE_WEIGHT_RECOMPUTE_H_

#include <cstdint>

namespace procrustes {
namespace sparse {

/** Stateless initial-weight generator backing Dropback training. */
class WeightRecomputeUnit
{
  public:
    /** Construct with the model-wide seed. */
    explicit WeightRecomputeUnit(uint64_t seed) : seed_(seed) {}

    /**
     * Raw approximately-standard-normal variate for a weight index
     * (mean 0, standard deviation 1, support (-3, 3): an Irwin-Hall(3)
     * shape from summing three centred uniform draws).
     */
    double standardVariate(uint64_t index) const;

    /**
     * Initial weight value: standardVariate(index) * std * decay.
     *
     * @param index flat global weight index.
     * @param init_std the layer's initialization standard deviation
     *        (e.g. Kaiming sqrt(2/fan_in)); realized by the unit's
     *        integer scaling multiplier in hardware.
     * @param decay lambda^t factor from Algorithm 3 (1.0 = no decay,
     *        0.0 once all initial weights have decayed away).
     */
    float initialWeight(uint64_t index, float init_std,
                        float decay) const;

    /** Model-wide seed. */
    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
};

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_WEIGHT_RECOMPUTE_H_
