#include "sparse/csb.h"

#include "common/math_utils.h"

namespace procrustes {
namespace sparse {

CsbTensor
CsbTensor::encodeConvFilters(const Tensor &w, Precision storage)
{
    PROCRUSTES_ASSERT(w.shape().rank() == 4,
                      "conv filters must be [K, C, R, S]");
    return encodeBlocks(w, Kind::ConvFilters, /*block_side=*/0, storage);
}

CsbTensor
CsbTensor::encodeMatrix(const Tensor &w, int64_t block_side,
                        Precision storage)
{
    PROCRUSTES_ASSERT(w.shape().rank() == 2, "matrix must be [O, I]");
    PROCRUSTES_ASSERT(block_side > 0, "block side must be positive");
    return encodeBlocks(w, Kind::Matrix, block_side, storage);
}

int64_t
CsbTensor::denseIndex(int64_t b, int64_t e) const
{
    if (kind_ == Kind::ConvFilters) {
        // Block b covers kernel (k, c); blocks and kernels are both
        // row-major, so the dense index is simply contiguous.
        return b * blockElems_ + e;
    }
    const int64_t rows = denseShape_[0];
    const int64_t cols = denseShape_[1];
    const int64_t br = b / blocksPerRow_;
    const int64_t bc = b % blocksPerRow_;
    const int64_t er = e / blockSide_;
    const int64_t ec = e % blockSide_;
    const int64_t row = br * blockSide_ + er;
    const int64_t col = bc * blockSide_ + ec;
    if (row >= rows || col >= cols)
        return -1;   // out-of-range corner of an edge block
    return row * cols + col;
}

CsbTensor
CsbTensor::encodeBlocks(const Tensor &w, Kind kind, int64_t block_side,
                        Precision storage)
{
    CsbTensor out;
    out.kind_ = kind;
    out.precision_ = storage;
    out.denseShape_ = w.shape();

    int64_t num_blocks;
    if (kind == Kind::ConvFilters) {
        out.blockElems_ = w.shape()[2] * w.shape()[3];
        num_blocks = w.shape()[0] * w.shape()[1];
    } else {
        out.blockSide_ = block_side;
        out.blockElems_ = block_side * block_side;
        out.blocksPerRow_ = ceilDiv(w.shape()[1], block_side);
        num_blocks = ceilDiv(w.shape()[0], block_side) * out.blocksPerRow_;
    }

    out.pointers_.assign(static_cast<size_t>(num_blocks) + 1, 0);
    out.maskWords_.assign(
        static_cast<size_t>(
            ceilDiv(num_blocks * out.blockElems_, 64)),
        0);

    const float *pw = w.data();
    for (int64_t b = 0; b < num_blocks; ++b) {
        for (int64_t e = 0; e < out.blockElems_; ++e) {
            const int64_t di = out.denseIndex(b, e);
            if (di < 0)
                continue;
            // Round through the storage tier *before* the liveness
            // test so the mask and the value stream agree on which
            // positions are zero (bf16 can flush |x| < 2^-133 to 0).
            const float v = storage == Precision::kBf16
                                ? bf16Round(pw[di])
                                : pw[di];
            if (v != 0.0f) {
                out.values_.push_back(v);
                const int64_t bit = b * out.blockElems_ + e;
                out.maskWords_[static_cast<size_t>(bit >> 6)] |=
                    uint64_t{1} << (bit & 63);
            }
        }
        out.pointers_[static_cast<size_t>(b) + 1] =
            static_cast<uint32_t>(out.values_.size());
    }
    return out;
}

Tensor
CsbTensor::decode() const
{
    Tensor out(denseShape_);
    float *po = out.data();
    for (int64_t b = 0; b < numBlocks(); ++b) {
        int64_t cursor = pointers_[static_cast<size_t>(b)];
        for (int64_t e = 0; e < blockElems_; ++e) {
            if (!maskBit(b, e))
                continue;
            const int64_t di = denseIndex(b, e);
            PROCRUSTES_ASSERT(di >= 0, "set mask bit outside dense space");
            po[di] = values_[static_cast<size_t>(cursor++)];
        }
    }
    return out;
}

Tensor
CsbTensor::decodeRotated180() const
{
    PROCRUSTES_ASSERT(kind_ == Kind::ConvFilters,
                      "rotation applies to conv filters only");
    const int64_t r_ext = denseShape_[2];
    const int64_t s_ext = denseShape_[3];
    Tensor out(denseShape_);
    float *po = out.data();
    // Rotation happens per block while fetching: the packed values are
    // streamed in mask order and written to the 180-degree-rotated
    // position of the same kernel region.
    for (int64_t b = 0; b < numBlocks(); ++b) {
        int64_t cursor = pointers_[static_cast<size_t>(b)];
        for (int64_t e = 0; e < blockElems_; ++e) {
            if (!maskBit(b, e))
                continue;
            const int64_t r = e / s_ext;
            const int64_t s = e % s_ext;
            const int64_t rot_e = (r_ext - 1 - r) * s_ext +
                                  (s_ext - 1 - s);
            po[b * blockElems_ + rot_e] =
                values_[static_cast<size_t>(cursor++)];
        }
    }
    return out;
}

Tensor
CsbTensor::decodeTransposed() const
{
    PROCRUSTES_ASSERT(kind_ == Kind::Matrix,
                      "transposition applies to fc matrices only");
    const int64_t rows = denseShape_[0];
    const int64_t cols = denseShape_[1];
    Tensor out(Shape{cols, rows});
    float *po = out.data();
    for (int64_t b = 0; b < numBlocks(); ++b) {
        int64_t cursor = pointers_[static_cast<size_t>(b)];
        for (int64_t e = 0; e < blockElems_; ++e) {
            if (!maskBit(b, e))
                continue;
            const int64_t di = denseIndex(b, e);
            PROCRUSTES_ASSERT(di >= 0, "set mask bit outside dense space");
            const int64_t row = di / cols;
            const int64_t col = di % cols;
            po[col * rows + row] = values_[static_cast<size_t>(cursor++)];
        }
    }
    return out;
}

double
CsbTensor::density() const
{
    const int64_t dense = denseShape_.numel();
    return dense ? static_cast<double>(nnz()) /
                       static_cast<double>(dense)
                 : 0.0;
}

std::vector<float>
CsbTensor::blockDense(int64_t b) const
{
    PROCRUSTES_ASSERT(b >= 0 && b < numBlocks(), "block index range");
    std::vector<float> out(static_cast<size_t>(blockElems_), 0.0f);
    int64_t cursor = pointers_[static_cast<size_t>(b)];
    for (int64_t e = 0; e < blockElems_; ++e) {
        if (maskBit(b, e))
            out[static_cast<size_t>(e)] =
                values_[static_cast<size_t>(cursor++)];
    }
    return out;
}

int64_t
CsbTensor::maskBytes() const
{
    return ceilDiv(numBlocks() * blockElems_, 8);
}

int64_t
CsbTensor::totalBytes() const
{
    return valueBytes() + maskBytes() + pointerBytes();
}

bool
CsbTensor::sameMaskAs(const CsbTensor &other) const
{
    return kind_ == other.kind_ && denseShape_ == other.denseShape_ &&
           blockElems_ == other.blockElems_ &&
           blockSide_ == other.blockSide_ &&
           blocksPerRow_ == other.blocksPerRow_ &&
           pointers_ == other.pointers_ &&
           maskWords_ == other.maskWords_;
}

} // namespace sparse
} // namespace procrustes
