/**
 * @file
 * Compressed Sparse Block (CSB) weight representation (Section IV-B).
 *
 * Inference-accelerator formats (CSC-style run-length encodings) are
 * coupled to one traversal order and cannot serve training, where the
 * same weights are read in different orders in different phases. The
 * Procrustes CSB variant stores:
 *
 *   (a) a *weight array* of variable-size packed non-zero blocks, where
 *       a block corresponds to a fixed region of the dense space (one
 *       R x S kernel for conv layers, a square sub-matrix for fc);
 *   (b) a *pointer array* indexed by tensor coordinates giving each
 *       block's offset in the weight array; and
 *   (c) a *mask array*, also coordinate-indexed, with one bit per dense
 *       position in the block.
 *
 * Because pointers are indexed in the dense coordinate space, block
 * addresses are computable in any phase; block density is a pointer
 * subtraction; blocks are rotated 180° (backward pass) or transposed
 * (fc backward) while being fetched.
 */

#ifndef PROCRUSTES_SPARSE_CSB_H_
#define PROCRUSTES_SPARSE_CSB_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace sparse {

/** Block-compressed sparse weight tensor. */
class CsbTensor
{
  public:
    /** Tensor kind determines block geometry and legal traversals. */
    enum class Kind
    {
        ConvFilters,   //!< dense space [K, C, R, S]; block = one kernel
        Matrix,        //!< dense space [O, I]; square blocks
    };

    /** Empty placeholder; assign an encode*() result before use. */
    CsbTensor() = default;

    /**
     * Encode dense conv filters [K, C, R, S]; one block per (k, c)
     * kernel, so the region size adapts to the layer's kernel size.
     * With a bf16 storage tier the values are rounded through bf16
     * *before* the liveness test, so mask and values stay consistent.
     */
    static CsbTensor encodeConvFilters(
        const Tensor &w, Precision storage = Precision::kFp32);

    /**
     * Encode a dense fc weight matrix [O, I] into square blocks of the
     * given side; edge blocks cover the in-range remainder.
     */
    static CsbTensor encodeMatrix(const Tensor &w, int64_t block_side,
                                  Precision storage = Precision::kFp32);

    /** Reconstruct the dense tensor. */
    Tensor decode() const;

    /**
     * Dense tensor with every kernel rotated 180° (the backward-pass
     * filter view of Figure 2b). ConvFilters only.
     */
    Tensor decodeRotated180() const;

    /**
     * Dense transposed matrix [I, O] assembled by transposing blocks
     * piecewise (the fc backward-pass view). Matrix only.
     */
    Tensor decodeTransposed() const;

    /** Number of blocks. */
    int64_t numBlocks() const
    {
        return static_cast<int64_t>(pointers_.size()) - 1;
    }

    /** Non-zeros in block b — a pointer subtraction (Section IV-B). */
    int64_t
    blockNnz(int64_t b) const
    {
        return static_cast<int64_t>(pointers_[static_cast<size_t>(b + 1)] -
                                    pointers_[static_cast<size_t>(b)]);
    }

    /** Total non-zeros. */
    int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

    /** Non-zero fraction of the dense space. */
    double density() const;

    /** Dense contents of one block, in row-major region order. */
    std::vector<float> blockDense(int64_t b) const;

    /** Dense elements covered by one block's region. */
    int64_t blockElems() const { return blockElems_; }

    /**
     * True if the mask marks dense position e of block b live. This is
     * the bit the weight-gradient pass consults: only live positions
     * accumulate dW, pruned ones are skipped like any other zero MAC.
     */
    bool blockMaskBit(int64_t b, int64_t e) const { return maskBit(b, e); }

    /** Kind of tensor encoded. */
    Kind kind() const { return kind_; }

    /** Matrix kind: side length of the square blocks. */
    int64_t blockSide() const { return blockSide_; }

    /** Matrix kind: number of blocks along the I dimension. */
    int64_t blocksPerRow() const { return blocksPerRow_; }

    /** Dense shape this tensor decodes to. */
    const Shape &denseShape() const { return denseShape_; }

    /**
     * Raw packed value stream (mask traversal order). The executors'
     * pre-packed tap geometry indexes into this array, so packs built
     * against one encode stay valid for any later encode with the same
     * mask — only the values change.
     */
    const float *valuesData() const { return values_.data(); }

    /** Offset of block b's first value in the packed value stream. */
    int64_t
    blockValueOffset(int64_t b) const
    {
        return static_cast<int64_t>(pointers_[static_cast<size_t>(b)]);
    }

    /**
     * True if the other tensor has an identical sparsity structure:
     * same kind, dense shape, block geometry, pointers, and mask bits.
     * Values (and storage precision) may differ. This is the
     * mask-epoch test the layers use to decide whether cached tap
     * geometry can be reused across optimizer steps.
     */
    bool sameMaskAs(const CsbTensor &other) const;

    /** Storage tier of the packed value array (kFp32 or kBf16). */
    Precision storagePrecision() const { return precision_; }

    /** @name Storage accounting for the cost model. */
    /**@{*/
    int64_t valueBytes() const
    {
        return nnz() * precisionBytes(precision_);
    }
    int64_t maskBytes() const;      //!< 1 bit per dense element
    int64_t pointerBytes() const { return (numBlocks() + 1) * 4; }
    int64_t totalBytes() const;
    static int64_t
    denseBytes(const Shape &s, Precision storage = Precision::kFp32)
    {
        return s.numel() * precisionBytes(storage);
    }
    /**@}*/

  private:
    static CsbTensor encodeBlocks(const Tensor &w, Kind kind,
                                  int64_t block_side, Precision storage);

    /** Flat dense index of element e of block b. */
    int64_t denseIndex(int64_t b, int64_t e) const;

    /** True if mask bit e of block b is set. */
    bool
    maskBit(int64_t b, int64_t e) const
    {
        const int64_t bit = b * blockElems_ + e;
        return (maskWords_[static_cast<size_t>(bit >> 6)] >>
                (bit & 63)) & 1;
    }

    Kind kind_ = Kind::ConvFilters;
    Precision precision_ = Precision::kFp32;
    Shape denseShape_;
    int64_t blockElems_ = 0;
    int64_t blockSide_ = 0;        //!< Matrix kind: block side length
    int64_t blocksPerRow_ = 0;     //!< Matrix kind: blocks along I
    std::vector<float> values_;    //!< (a) packed weight array
    std::vector<uint32_t> pointers_; //!< (b) block offsets, size nb+1
    std::vector<uint64_t> maskWords_; //!< (c) packed mask bits
};

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_CSB_H_
