#include "sparse/sparse_linear.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/scratch_arena.h"
#include "common/thread_pool.h"
#include "kernels/sparse_microkernels.h"

namespace procrustes {
namespace sparse {

namespace {

/**
 * Gather row- and/or column-grouped taps from the CSB blocks —
 * block-major, mask order, in one walk — so neither view requires a
 * re-encode: the column view simply reads each square block through
 * its transpose while fetching, which is the
 * coordinate-addressability the pointer array buys (Section IV-B).
 * Blocks are visited in pointer order and elements in mask order, so
 * within every row group the column indices ascend and within every
 * column group the row indices ascend — a fixed traversal order for
 * any thread count.
 */
void
gatherFcTaps(const CsbTensor &w, FcTaps *rows, FcTaps *cols)
{
    const Shape &ws = w.denseShape();
    const int64_t o_ext = ws[0];
    const int64_t i_ext = ws[1];
    const int64_t side = w.blockSide();
    const int64_t bpr = w.blocksPerRow();
    const int64_t nnz = w.nnz();

    if (rows) {
        rows->offsets.assign(static_cast<size_t>(o_ext) + 1, 0);
        rows->index.resize(static_cast<size_t>(nnz));
        rows->value.resize(static_cast<size_t>(nnz));
        rows->perm.resize(static_cast<size_t>(nnz));
    }
    if (cols) {
        cols->offsets.assign(static_cast<size_t>(i_ext) + 1, 0);
        cols->index.resize(static_cast<size_t>(nnz));
        cols->value.resize(static_cast<size_t>(nnz));
        cols->perm.resize(static_cast<size_t>(nnz));
    }

    // Pass 1: per-group counts (offset at index g+1, shifted below).
    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;
        const int64_t br = b / bpr;
        const int64_t bc = b % bpr;
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            if (!w.blockMaskBit(b, e))
                continue;
            const int64_t o = br * side + e / side;
            const int64_t i = bc * side + e % side;
            if (rows)
                ++rows->offsets[static_cast<size_t>(o) + 1];
            if (cols)
                ++cols->offsets[static_cast<size_t>(i) + 1];
        }
    }
    if (rows) {
        for (int64_t o = 0; o < o_ext; ++o)
            rows->offsets[static_cast<size_t>(o) + 1] +=
                rows->offsets[static_cast<size_t>(o)];
    }
    if (cols) {
        for (int64_t i = 0; i < i_ext; ++i)
            cols->offsets[static_cast<size_t>(i) + 1] +=
                cols->offsets[static_cast<size_t>(i)];
    }

    // Pass 2: fill, tracking a write cursor per group. The mask walk
    // visits live elements in exactly the packed-value order, so the
    // running value cursor vi is both the value to copy and the
    // permutation entry that lets refreshFcTapValues re-copy later
    // encodes with the same mask.
    std::vector<int64_t> row_cursor, col_cursor;
    if (rows)
        row_cursor = rows->offsets;
    if (cols)
        col_cursor = cols->offsets;
    const float *pv = w.valuesData();
    for (int64_t b = 0; b < w.numBlocks(); ++b) {
        if (w.blockNnz(b) == 0)
            continue;   // density known from pointer subtraction
        const int64_t br = b / bpr;
        const int64_t bc = b % bpr;
        int64_t vi = w.blockValueOffset(b);
        for (int64_t e = 0; e < w.blockElems(); ++e) {
            if (!w.blockMaskBit(b, e))
                continue;
            const float v = pv[vi];
            const int64_t o = br * side + e / side;
            const int64_t i = bc * side + e % side;
            if (rows) {
                const int64_t at = row_cursor[static_cast<size_t>(o)]++;
                rows->index[static_cast<size_t>(at)] = i;
                rows->value[static_cast<size_t>(at)] = v;
                rows->perm[static_cast<size_t>(at)] = vi;
            }
            if (cols) {
                const int64_t at = col_cursor[static_cast<size_t>(i)]++;
                cols->index[static_cast<size_t>(at)] = o;
                cols->value[static_cast<size_t>(at)] = v;
                cols->perm[static_cast<size_t>(at)] = vi;
            }
            ++vi;
        }
    }
}

/** Validate a CSB matrix against an [N, dim1] activation tensor. */
void
checkMatrixOperand(const Tensor &t, const CsbTensor &w, int64_t dim1,
                   const char *what)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::Matrix,
                      "weights must be a CSB matrix");
    PROCRUSTES_ASSERT(t.shape().rank() == 2 && t.shape()[1] == dim1,
                      what);
}

} // namespace

FcWuAux
buildFcWuAux(const FcTaps &rows, int64_t o_ext, int64_t i_ext)
{
    FcWuAux aux;
    const int64_t nnz = static_cast<int64_t>(rows.index.size());
    aux.liveRow.resize(static_cast<size_t>(nnz));
    for (int64_t o = 0; o < o_ext; ++o) {
        for (int64_t t = rows.offsets[static_cast<size_t>(o)];
             t < rows.offsets[static_cast<size_t>(o) + 1]; ++t)
            aux.liveRow[static_cast<size_t>(t)] = o;
    }
    // The AVX2 fill/reduce kernels gather with 32-bit indices; leave
    // the copies empty (→ 64-bit scalar path) when the dense weight
    // space itself would overflow int32.
    if (o_ext * i_ext < std::numeric_limits<int32_t>::max()) {
        aux.index32.resize(static_cast<size_t>(nnz));
        aux.row32.resize(static_cast<size_t>(nnz));
        aux.di32.resize(static_cast<size_t>(nnz));
        for (int64_t t = 0; t < nnz; ++t) {
            const int64_t o = aux.liveRow[static_cast<size_t>(t)];
            const int64_t i = rows.index[static_cast<size_t>(t)];
            aux.index32[static_cast<size_t>(t)] =
                static_cast<int32_t>(i);
            aux.row32[static_cast<size_t>(t)] = static_cast<int32_t>(o);
            aux.di32[static_cast<size_t>(t)] =
                static_cast<int32_t>(o * i_ext + i);
        }
    }
    return aux;
}

FcTapViews
gatherFcTapViews(const CsbTensor &w)
{
    PROCRUSTES_ASSERT(w.kind() == CsbTensor::Kind::Matrix,
                      "weights must be a CSB matrix");
    FcTapViews views;
    gatherFcTaps(w, &views.rows, &views.cols);
    views.wu = buildFcWuAux(views.rows, w.denseShape()[0],
                            w.denseShape()[1]);
    return views;
}

void
refreshFcTapValues(const CsbTensor &w, FcTapViews *views)
{
    PROCRUSTES_ASSERT(views, "null tap views");
    PROCRUSTES_ASSERT(
        static_cast<int64_t>(views->rows.perm.size()) == w.nnz() &&
            static_cast<int64_t>(views->cols.perm.size()) == w.nnz(),
        "tap views do not match this encode");
    const float *pv = w.valuesData();
    const size_t nnz = views->rows.perm.size();
    for (size_t t = 0; t < nnz; ++t)
        views->rows.value[t] = pv[views->rows.perm[t]];
    for (size_t t = 0; t < nnz; ++t)
        views->cols.value[t] = pv[views->cols.perm[t]];
}

Tensor
sparseLinearForward(const Tensor &x, const CsbTensor &w, int64_t *macs,
                    const FcTapViews *views)
{
    checkMatrixOperand(x, w, w.denseShape()[1],
                       "fc input must be [N, in_features]");
    const int64_t n = x.shape()[0];
    const int64_t i_ext = w.denseShape()[1];
    const int64_t o_ext = w.denseShape()[0];

    FcTaps local;
    if (!views)
        gatherFcTaps(w, &local, nullptr);
    const FcTaps &rows = views ? views->rows : local;

    Tensor y(Shape{n, o_ext});
    const float *px = x.data();
    float *py = y.data();

    // Batch-parallel: each task owns the y rows of its sample range,
    // and every y[n, o] accumulates its row's taps in the one fixed
    // (ascending-i) gather order — deterministic for any thread count.
    // Under AVX2 the samples are processed in transposed 8-wide tiles
    // (lane l = sample l); per-sample results are tile-independent and
    // per-lane tap order equals the untiled loop's, so tiling changes
    // no bit. The forward executor skips zero weights only (they are
    // never in the tap list), so the executed-MAC tally is nnz * N, no
    // counter needed in the inner loop.
    const int64_t *off = rows.offsets.data();
    const int64_t *idx = rows.index.data();
    const float *val = rows.value.data();
    const bool tiled =
        kernels::activeSimdLevel() == kernels::SimdLevel::kAvx2;
    ThreadPool::global().parallelFor(0, n, [&](int64_t n0, int64_t n1) {
        int64_t in = n0;
        if (tiled && n1 - n0 >= 8) {
            ScratchArena::Buffer buf = ScratchArena::global().acquire(
                static_cast<size_t>((i_ext + o_ext) * 8));
            float *xtile = buf.data();
            float *ytile = buf.data() + i_ext * 8;
            for (; in + 8 <= n1; in += 8) {
                kernels::fcPackTile8(px + in * i_ext, i_ext, i_ext,
                                     xtile);
                kernels::sparseFcFwdTile8(off, idx, val, o_ext, xtile,
                                          ytile);
                kernels::fcUnpackTile8(ytile, py + in * o_ext, o_ext,
                                       o_ext);
            }
        }
        for (; in < n1; ++in)   // untiled reference (tail samples)
            kernels::sparseFcFwdRow(off, idx, val, o_ext,
                                    px + in * i_ext, py + in * o_ext);
    });
    if (macs)
        *macs = w.nnz() * n;
    return y;
}

Tensor
sparseLinearBackwardData(const Tensor &dy, const CsbTensor &w,
                         int64_t *macs, const FcTapViews *views)
{
    checkMatrixOperand(dy, w, w.denseShape()[0],
                       "dy must be [N, out_features]");
    const int64_t n = dy.shape()[0];
    const int64_t o_ext = w.denseShape()[0];
    const int64_t i_ext = w.denseShape()[1];

    // The backward pass consumes the same packed blocks through the
    // transposed view: the column-grouped tap list below IS that
    // traversal (each block read transposed while fetching), so W^T
    // never exists as a second encode.
    FcTaps local;
    if (!views)
        gatherFcTaps(w, nullptr, &local);
    const FcTaps &cols = views ? views->cols : local;

    Tensor dx(Shape{n, i_ext});
    const float *pdy = dy.data();
    float *pdx = dx.data();

    // Batch-parallel with private dx rows per task, tiled 8 samples
    // wide under AVX2 exactly like the forward pass. Zero dy operands
    // are skipped (the activation sparsity a ReLU backward propagates)
    // — a skipped term is an exact zero, so the sums stay the exact
    // adjoint of the forward (the tile kernels multiply the zero
    // instead, an identity on lanes that start at +0), while the
    // executed-MAC tally (a sum of per-task integers) shrinks with the
    // measured gradient density.
    const int64_t *off = cols.offsets.data();
    const int64_t *idx = cols.index.data();
    const float *val = cols.value.data();
    const bool tiled =
        kernels::activeSimdLevel() == kernels::SimdLevel::kAvx2;
    std::atomic<int64_t> mac_total{0};
    ThreadPool::global().parallelFor(0, n, [&](int64_t n0, int64_t n1) {
        int64_t local_macs = 0;
        int64_t in = n0;
        if (tiled && n1 - n0 >= 8) {
            ScratchArena::Buffer buf = ScratchArena::global().acquire(
                static_cast<size_t>((o_ext + i_ext) * 8));
            float *dytile = buf.data();
            float *dxtile = buf.data() + o_ext * 8;
            for (; in + 8 <= n1; in += 8) {
                kernels::fcPackTile8(pdy + in * o_ext, o_ext, o_ext,
                                     dytile);
                local_macs += kernels::sparseFcBwdDataTile8(
                    off, idx, val, i_ext, dytile, dxtile);
                kernels::fcUnpackTile8(dxtile, pdx + in * i_ext, i_ext,
                                       i_ext);
            }
        }
        for (; in < n1; ++in)   // untiled reference (tail samples)
            local_macs += kernels::sparseFcBwdDataRow(
                off, idx, val, i_ext, pdy + in * o_ext,
                pdx + in * i_ext);
        mac_total.fetch_add(local_macs, std::memory_order_relaxed);
    });
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
    return dx;
}

void
sparseLinearBackwardWeights(const Tensor &x, const Tensor &dy,
                            const CsbTensor &w, Tensor *dw,
                            int64_t *macs, const FcTapViews *views)
{
    checkMatrixOperand(x, w, w.denseShape()[1],
                       "fc input must be [N, in_features]");
    checkMatrixOperand(dy, w, w.denseShape()[0],
                       "dy must be [N, out_features]");
    PROCRUSTES_ASSERT(dw && dw->shape() == w.denseShape(),
                      "dw shape mismatch in sparse linear backward");
    PROCRUSTES_ASSERT(x.shape()[0] == dy.shape()[0],
                      "x / dy batch mismatch");
    const int64_t n = x.shape()[0];
    const int64_t i_ext = w.denseShape()[1];
    const int64_t o_ext = w.denseShape()[0];

    // The weight-gradient pass reads the mask array, not the packed
    // values: it needs the live *positions*, while the value being
    // replaced is irrelevant. The row-grouped gather supplies them in
    // row-major order; the weight-update aux flattens them to (row,
    // col) pairs (and 32-bit gather indices) once.
    FcTaps local;
    if (!views)
        gatherFcTaps(w, &local, nullptr);
    const FcTaps &rows = views ? views->rows : local;
    const int64_t nnz = w.nnz();
    if (nnz == 0) {
        if (macs)
            *macs = 0;
        return;
    }
    FcWuAux local_aux;
    const FcWuAux *aux;
    if (views &&
        static_cast<int64_t>(views->wu.liveRow.size()) == nnz) {
        aux = &views->wu;
    } else {
        local_aux = buildFcWuAux(rows, o_ext, i_ext);
        aux = &local_aux;
    }
    const int64_t *live_row = aux->liveRow.data();
    const bool fast32 = !aux->di32.empty();

    const float *px = x.data();
    const float *pdy = dy.data();
    float *pdw = dw->data();

    // Batch-parallel with per-sample partial rows: whichever task
    // computes sample `in` writes partial slice `in - base`, and the
    // reduction walks samples in index order — so the accumulation
    // order per dW element is fixed for every thread count. The
    // partial buffer is capped: samples are processed in groups whose
    // size depends only on nnz (never on the thread count), bounding
    // scratch at ~64 MB for any batch size. Zero activations — the
    // ReLU zeros that make x the sparse operand of this phase — are
    // skipped (their partial is an exact zero), and the executed MACs
    // tallied.
    constexpr int64_t kMaxPartialBytes = 64 << 20;
    const int64_t group = std::min(
        n, std::max<int64_t>(
               1, kMaxPartialBytes /
                      (nnz * static_cast<int64_t>(sizeof(float)))));
    ScratchArena::Buffer part = ScratchArena::global().acquire(
        static_cast<size_t>(group * nnz));
    float *ppart = part.data();

    ThreadPool &pool = ThreadPool::global();
    std::atomic<int64_t> mac_total{0};
    for (int64_t base = 0; base < n; base += group) {
        const int64_t hi = std::min(n, base + group);
        pool.parallelFor(base, hi, [&](int64_t n0, int64_t n1) {
            int64_t local_macs = 0;
            for (int64_t in = n0; in < n1; ++in) {
                const float *xr = px + in * i_ext;
                const float *dyr = pdy + in * o_ext;
                float *slot = ppart + (in - base) * nnz;
                if (fast32) {
                    local_macs += kernels::sparseFcWuFill(
                        aux->index32.data(), aux->row32.data(), nnz, xr,
                        dyr, slot);
                } else {
                    // 64-bit fallback for weight spaces past int32.
                    for (int64_t t = 0; t < nnz; ++t) {
                        const float xv =
                            xr[rows.index[static_cast<size_t>(t)]];
                        if (xv == 0.0f) {
                            slot[t] = 0.0f;
                            continue;
                        }
                        slot[t] = dyr[live_row[t]] * xv;
                        ++local_macs;
                    }
                }
            }
            mac_total.fetch_add(local_macs, std::memory_order_relaxed);
        });

        // Ordered reduction: every live dW element sums this group's
        // per-sample partials in sample order. Parallel over taps
        // (disjoint outputs), never over samples — that, plus group
        // boundaries that do not depend on the thread count, keeps the
        // result bitwise identical for any pool size. Pruned positions
        // are never touched: their dW entries stay exactly as given.
        const int64_t gn = hi - base;
        pool.parallelFor(0, nnz, [&](int64_t t0, int64_t t1) {
            if (fast32) {
                kernels::sparseFcWuReduce(aux->di32.data(), ppart, nnz,
                                          gn, t0, t1, pdw);
                return;
            }
            for (int64_t t = t0; t < t1; ++t) {
                const int64_t di =
                    live_row[t] * i_ext +
                    rows.index[static_cast<size_t>(t)];
                float acc = pdw[di];
                for (int64_t s = 0; s < gn; ++s)
                    acc += ppart[s * nnz + t];
                pdw[di] = acc;
            }
        });
    }
    if (macs)
        *macs = mac_total.load(std::memory_order_relaxed);
}

SparseLinearMacCounts
sparseLinearMacCounts(const Tensor &x, const CsbTensor &w)
{
    checkMatrixOperand(x, w, w.denseShape()[1],
                       "fc input must be [N, in_features]");
    const int64_t bound = w.nnz() * x.shape()[0];
    SparseLinearMacCounts counts;
    counts.forward = bound;
    counts.backwardData = bound;
    counts.backwardWeight = bound;
    return counts;
}

SparseLinearMacCounts
sparseLinearMacCounts(const Tensor &x, const Tensor &dy,
                      const CsbTensor &w)
{
    checkMatrixOperand(x, w, w.denseShape()[1],
                       "fc input must be [N, in_features]");
    checkMatrixOperand(dy, w, w.denseShape()[0],
                       "dy must be [N, out_features]");
    PROCRUSTES_ASSERT(x.shape()[0] == dy.shape()[0],
                      "x / dy batch mismatch");
    const int64_t n = x.shape()[0];
    const int64_t o_ext = w.denseShape()[0];
    const int64_t i_ext = w.denseShape()[1];

    // A live weight (o, i) fires once per sample in the forward pass;
    // in backward-data only when dy[n, o] != 0; in backward-weight
    // only when x[n, i] != 0. Count the non-zero operands per column
    // once, then weigh each by how many live weights consume it.
    std::vector<int64_t> dy_nz(static_cast<size_t>(o_ext), 0);
    std::vector<int64_t> x_nz(static_cast<size_t>(i_ext), 0);
    const float *pdy = dy.data();
    const float *px = x.data();
    for (int64_t in = 0; in < n; ++in) {
        const float *dyr = pdy + in * o_ext;
        for (int64_t o = 0; o < o_ext; ++o)
            dy_nz[static_cast<size_t>(o)] += dyr[o] != 0.0f;
        const float *xr = px + in * i_ext;
        for (int64_t i = 0; i < i_ext; ++i)
            x_nz[static_cast<size_t>(i)] += xr[i] != 0.0f;
    }

    FcTaps rows;
    gatherFcTaps(w, &rows, nullptr);
    SparseLinearMacCounts counts;
    counts.forward = w.nnz() * n;
    for (int64_t o = 0; o < o_ext; ++o) {
        const int64_t row_nnz =
            rows.offsets[static_cast<size_t>(o) + 1] -
            rows.offsets[static_cast<size_t>(o)];
        counts.backwardData += row_nnz * dy_nz[static_cast<size_t>(o)];
        for (int64_t t = rows.offsets[static_cast<size_t>(o)];
             t < rows.offsets[static_cast<size_t>(o) + 1]; ++t)
            counts.backwardWeight +=
                x_nz[static_cast<size_t>(
                    rows.index[static_cast<size_t>(t)])];
    }
    return counts;
}

} // namespace sparse
} // namespace procrustes
