#include "sparse/dropback.h"

#include <algorithm>
#include <cmath>

namespace procrustes {
namespace sparse {

namespace {

/** Validate the sparsity factor before it feeds the QE target. */
double
trackedQuantile(const DropbackConfig &cfg)
{
    PROCRUSTES_ASSERT(cfg.sparsity > 1.0,
                      "sparsity factor must exceed 1x");
    return 1.0 - 1.0 / cfg.sparsity;
}

} // namespace

DropbackOptimizer::DropbackOptimizer(const DropbackConfig &cfg)
    : cfg_(cfg),
      wr_(cfg.wrSeed),
      qe_(trackedQuantile(cfg), cfg.quantileWidth, cfg.quantileRho,
          cfg.quantileInit)
{
    PROCRUSTES_ASSERT(cfg.lr > 0.0f, "learning rate must be positive");
    PROCRUSTES_ASSERT(cfg.initDecay > 0.0f && cfg.initDecay <= 1.0f,
                      "decay must be in (0, 1]");
}

float
DropbackOptimizer::currentDecayFactor() const
{
    if (cfg_.initDecay >= 1.0f)
        return 1.0f;
    if (iteration_ >= cfg_.decayHorizon)
        return 0.0f;
    return static_cast<float>(
        std::pow(static_cast<double>(cfg_.initDecay),
                 static_cast<double>(iteration_)));
}

float
DropbackOptimizer::initialValue(const ParamState &st, int64_t i) const
{
    if (cfg_.useWeightRecompute) {
        return wr_.initialWeight(
            st.indexBase + static_cast<uint64_t>(i), st.initStd, 1.0f);
    }
    return st.w0.data()[i];
}

void
DropbackOptimizer::captureInitialState(
    const std::vector<nn::Param *> &params)
{
    state_.clear();
    state_.reserve(params.size());
    prunableCount_ = 0;
    uint64_t index_base = 0;

    for (nn::Param *p : params) {
        ParamState st;
        st.prunable = p->prunable;
        st.indexBase = index_base;
        if (p->prunable) {
            const Shape &s = p->value.shape();
            int64_t fan_in = 1;
            for (int d = 1; d < s.rank(); ++d)
                fan_in *= s[d];
            st.initStd = std::sqrt(2.0f / static_cast<float>(fan_in));
            st.acc = Tensor(s);
            st.emb = Tensor(s);
            st.tracked.assign(static_cast<size_t>(s.numel()), 0);
            if (cfg_.useWeightRecompute) {
                // The hardware never stores W(0): re-initialize this
                // tensor from the WR unit so stored and regenerated
                // views agree by construction.
                float *v = p->value.data();
                const int64_t n = p->value.numel();
                for (int64_t i = 0; i < n; ++i) {
                    v[i] = wr_.initialWeight(
                        index_base + static_cast<uint64_t>(i),
                        st.initStd, 1.0f);
                }
            } else {
                st.w0 = p->value;
            }
            index_base += static_cast<uint64_t>(p->value.numel());
            prunableCount_ += p->value.numel();
        }
        state_.push_back(std::move(st));
    }
    initialized_ = true;
}

double
DropbackOptimizer::selectThreshold(const std::vector<nn::Param *> &params)
{
    // Exact mode reproduces Algorithm 2/3: one global sort (here an
    // nth_element selection) over the candidate accumulated-gradient
    // magnitudes of every prunable weight in the model.
    std::vector<float> cands;
    cands.reserve(static_cast<size_t>(prunableCount_));
    for (size_t pi = 0; pi < params.size(); ++pi) {
        const ParamState &st = state_[pi];
        if (!st.prunable)
            continue;
        const float *g = params[pi]->grad.data();
        const float *acc = st.acc.data();
        const int64_t n = params[pi]->value.numel();
        for (int64_t i = 0; i < n; ++i)
            cands.push_back(std::fabs(acc[i] - cfg_.lr * g[i]));
    }
    const auto keep = static_cast<int64_t>(
        static_cast<double>(prunableCount_) / cfg_.sparsity);
    if (keep >= prunableCount_)
        return -1.0;
    // Threshold = value of the (keep+1)-th largest candidate; weights
    // strictly above it survive, mirroring mask = 1(S > S[k]).
    const int64_t nth = prunableCount_ - keep - 1;
    std::nth_element(cands.begin(), cands.begin() + nth, cands.end());
    return static_cast<double>(cands[static_cast<size_t>(nth)]);
}

void
DropbackOptimizer::step(const std::vector<nn::Param *> &params)
{
    if (!initialized_)
        captureInitialState(params);
    PROCRUSTES_ASSERT(state_.size() == params.size(),
                      "parameter set changed between steps");

    double threshold = 0.0;
    if (cfg_.selection == SelectionMode::ExactSort)
        threshold = selectThreshold(params);

    const float decay = currentDecayFactor();
    trackedCount_ = 0;

    for (size_t pi = 0; pi < params.size(); ++pi) {
        nn::Param *p = params[pi];
        ParamState &st = state_[pi];
        float *v = p->value.data();
        const float *g = p->grad.data();
        const int64_t n = p->value.numel();

        if (!st.prunable) {
            for (int64_t i = 0; i < n; ++i)
                v[i] -= cfg_.lr * g[i];
            continue;
        }

        float *acc = st.acc.data();
        float *emb = st.emb.data();
        uint8_t *trk = st.tracked.data();
        const bool streaming =
            cfg_.selection == SelectionMode::QuantileEstimate;
        for (int64_t i = 0; i < n; ++i) {
            const float cand = acc[i] - cfg_.lr * g[i];
            const double mag = std::fabs(cand);
            bool keep;
            if (streaming) {
                // Streaming protocol of Section III-B: each candidate
                // is tested against the evolving estimate, then folded
                // into it. Estimation lag tracks slightly more weights
                // than the target — the overhead the paper measures
                // (7.5x -> 5.2x).
                keep = mag > qe_.estimate();
                qe_.update(mag);
            } else {
                keep = mag > threshold;
            }
            if (keep) {
                if (!trk[i]) {
                    // Pruned -> tracked: absorb the current decayed
                    // initial value (Algorithm 3 keeps it embedded in
                    // W(t-1) from here on).
                    emb[i] = decay * initialValue(st, i);
                    trk[i] = 1;
                }
                acc[i] = cand;
                v[i] = emb[i] + acc[i];
                ++trackedCount_;
            } else {
                trk[i] = 0;
                acc[i] = 0.0f;
                v[i] = decay * initialValue(st, i);
            }
        }
    }

    lastThreshold_ = cfg_.selection == SelectionMode::QuantileEstimate
                         ? qe_.estimate()
                         : threshold;
    ++iteration_;
}

double
DropbackOptimizer::trackedFraction() const
{
    return prunableCount_
               ? static_cast<double>(trackedCount_) /
                     static_cast<double>(prunableCount_)
               : 0.0;
}

} // namespace sparse
} // namespace procrustes
