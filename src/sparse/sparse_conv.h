/**
 * @file
 * Sparse convolution executors operating directly on CSB weights.
 *
 * The accelerator never materializes dense filters: PEs fetch packed
 * blocks, walk the mask bits, and skip zero weights (the MAC-skipping
 * that Figure 1 converts into energy). These functions are the
 * functional-model equivalent — forward and backward-data convolution
 * computed straight from a CsbTensor, iterating only over non-zeros,
 * with the backward pass consuming the same blocks through the
 * 180°-rotation view. They are validated against the dense nn::Conv2d
 * reference in tests.
 *
 * The traversal is partitioned across the shared ThreadPool — over
 * output channels in the forward pass and input channels in the
 * backward pass — so every thread accumulates into a private slice of
 * the output in a fixed order (deterministic for any thread count),
 * and per-tap output ranges are pre-clipped against the padding halo
 * so the MAC loops run branch-free.
 *
 * The inner loops are the SIMD microkernels of
 * kernels/sparse_microkernels.h: each executor streams a pre-packed
 * gather-free tap list (geometry only — values are read from the
 * CsbTensor per call) and dispatches per plane/block to AVX2 or the
 * scalar reference, which are bitwise identical by construction. A
 * caller that owns a ConvTapPack for the current mask + geometry can
 * pass it in to skip the per-call pack step (the layers cache one
 * across optimizer steps while the mask epoch is unchanged).
 */

#ifndef PROCRUSTES_SPARSE_SPARSE_CONV_H_
#define PROCRUSTES_SPARSE_SPARSE_CONV_H_

#include <cstdint>

#include "kernels/sparse_microkernels.h"
#include "sparse/csb.h"
#include "tensor/tensor.h"

namespace procrustes {
namespace sparse {

/**
 * Forward convolution y = x * W from CSB-encoded filters.
 *
 * @param x input activations [N, C, H, W].
 * @param w CSB-encoded filters whose dense space is [K, C, R, S].
 * @param stride convolution stride.
 * @param pad symmetric zero padding.
 * @param macs optional out: MACs executed (non-zero weight taps x
 *        padding-clipped output positions), tallied while running so
 *        telemetry costs no second traversal.
 * @param pack optional pre-built tap pack for w at this geometry
 *        (asserted to match); built per call when omitted.
 * @return output activations [N, K, P, Q].
 */
Tensor sparseConvForward(const Tensor &x, const CsbTensor &w,
                         int64_t stride, int64_t pad,
                         int64_t *macs = nullptr,
                         const kernels::ConvTapPack *pack = nullptr);

/**
 * Backward-data convolution dx = dy * rot180(W) from the same CSB
 * blocks (the Figure 2b access pattern: the packed values are
 * consumed in rotated order while streaming).
 *
 * Zero entries of dy are skipped — after a ReLU (or max-pool) backward
 * the incoming gradient carries the activation sparsity of Section
 * II-B, and a PE issues no MAC for a zero operand. Skipping a zero
 * term leaves the accumulated sums bit-identical, so this executor
 * stays the exact adjoint of sparseConvForward.
 *
 * @param dy output-side gradient [N, K, P, Q].
 * @param w CSB-encoded filters [K, C, R, S].
 * @param x_shape shape of the forward input (for halo bounds).
 * @param stride convolution stride.
 * @param pad symmetric zero padding.
 * @param macs optional out: MACs actually executed (live weight taps
 *        x non-zero dy operands, padding-clipped).
 * @param pack optional pre-built tap pack (see sparseConvForward).
 * @return input-side gradient with shape x_shape.
 */
Tensor sparseConvBackwardData(const Tensor &dy, const CsbTensor &w,
                              const Shape &x_shape, int64_t stride,
                              int64_t pad, int64_t *macs = nullptr,
                              const kernels::ConvTapPack *pack = nullptr);

/**
 * Weight-gradient convolution restricted to the CSB mask (the third
 * training convolution of Figure 2, applied to the weight-update
 * pass): dW[k, c, r, s] += sum_{n, p, q} dy[n, k, p, q] *
 * x[n, c, p*stride + r - pad, q*stride + s - pad] for every position
 * the mask marks live. Pruned positions accumulate nothing — their
 * MACs are skipped exactly as the PEs skip zero weights, which is what
 * closes the sparse-training gap for the weight-update phase.
 *
 * Zero input activations are skipped: ReLU zeros make x the sparse
 * operand of the weight-update phase (Section II-B), and their product
 * terms are exact zeros, so the accumulated dW is bit-identical while
 * the executed MACs — reported through `macs` — shrink with the
 * measured activation density.
 *
 * @param x forward input activations [N, C, H, W].
 * @param dy output-side gradient [N, K, P, Q].
 * @param w CSB-encoded filters [K, C, R, S] (supplies the mask).
 * @param stride convolution stride.
 * @param pad symmetric zero padding.
 * @param dw dense weight gradient [K, C, R, S]; ACCUMULATED into at
 *        live positions only, untouched elsewhere.
 * @param macs optional out: MACs actually executed (mask-live taps x
 *        non-zero activation operands, padding-clipped).
 * @param pack optional pre-built tap pack (see sparseConvForward).
 */
void sparseConvBackwardWeights(const Tensor &x, const Tensor &dy,
                               const CsbTensor &w, int64_t stride,
                               int64_t pad, Tensor *dw,
                               int64_t *macs = nullptr,
                               const kernels::ConvTapPack *pack = nullptr);

/**
 * Exact MAC counts of the three training convolutions for this input.
 *
 * All three phases share one operation space: a live tap (k, c, r, s)
 * fires once per in-bounds output position (n, p, q) whether it is
 * multiplying activations (forward), scattering into dx
 * (backward-data), or reducing into dW (backward-weight). The counts
 * are therefore equal by construction — kept as separate fields so
 * cost-model consumers can attribute them per phase.
 */
struct SparseConvMacCounts
{
    int64_t forward = 0;
    int64_t backwardData = 0;
    int64_t backwardWeight = 0;

    /** Whole-iteration MACs (all three phases). */
    int64_t total() const { return forward + backwardData + backwardWeight; }
};

SparseConvMacCounts sparseConvMacCounts(const Tensor &x,
                                        const CsbTensor &w,
                                        int64_t stride, int64_t pad);

/**
 * Measured MAC counts honouring weight mask AND activation zeros —
 * exactly what the zero-skipping executors execute on this input:
 *
 *   forward:          live weight taps x in-bounds output positions
 *                     (the forward executor skips weights only);
 *   backward-data:    live taps x in-bounds positions whose dy operand
 *                     is non-zero (the dy-skip above);
 *   backward-weight:  mask-live taps x in-bounds positions whose input
 *                     activation operand is non-zero (the x-skip).
 *
 * These are the per-step numbers the workload-trace pipeline feeds
 * into the cost model's training-iteration accounting.
 *
 * @param x forward input activations [N, C, H, W] (real values).
 * @param dy output-side gradient [N, K, P, Q] (real values).
 */
SparseConvMacCounts sparseConvMacCounts(const Tensor &x, const Tensor &dy,
                                        const CsbTensor &w,
                                        int64_t stride, int64_t pad);

/**
 * Exact number of multiply-accumulates sparseConvForward issues for
 * this input: only in-bounds (padding-clipped) positions are counted,
 * so cost-model MAC counts match what the kernels execute. Equals
 * sparseConvMacCounts(...).forward.
 */
int64_t sparseConvMacs(const Tensor &x, const CsbTensor &w,
                       int64_t stride, int64_t pad);

} // namespace sparse
} // namespace procrustes

#endif // PROCRUSTES_SPARSE_SPARSE_CONV_H_
