#include "sparse/quantile.h"

namespace procrustes {
namespace sparse {

QuantileEstimator::QuantileEstimator(double q, double rho,
                                     double initial_estimate)
    : q_(q),
      estimate_(initial_estimate),
      upFactor_(1.0 + rho * q),
      downFactor_(1.0 - rho * (1.0 - q))
{
    PROCRUSTES_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
    PROCRUSTES_ASSERT(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
    PROCRUSTES_ASSERT(initial_estimate > 0.0,
                      "initial estimate must be positive");
}

ParallelQuantileEstimator::ParallelQuantileEstimator(
    double q, int width, double rho, double initial_estimate)
    : base_(q, rho, initial_estimate), width_(width)
{
    PROCRUSTES_ASSERT(width >= 1, "width must be >= 1");
}

void
ParallelQuantileEstimator::update(double x)
{
    pendingSum_ += x;
    if (++pending_ == width_) {
        base_.update(pendingSum_ / width_);
        pending_ = 0;
        pendingSum_ = 0.0;
    }
}

void
ParallelQuantileEstimator::flush()
{
    if (pending_ > 0) {
        base_.update(pendingSum_ / pending_);
        pending_ = 0;
        pendingSum_ = 0.0;
    }
}

} // namespace sparse
} // namespace procrustes
